//! The end-to-end yield analysis pipeline.
//!
//! [`analyze`] runs the method exactly as published: select `M`, build the
//! generalized fault tree `G` in binary logic, order the variables, build
//! the coded ROBDD, convert it to the ROMDD, and evaluate `P(G = 1)` to
//! obtain the yield lower bound `Y_M = 1 − P(G = 1)`.
//!
//! [`Pipeline`] is the reusable form of the same computation for
//! design-space studies: it compiles the fault tree / coded ROBDD /
//! ROMDD once per `(ordering, conversion)` configuration and then
//! [`sweep`](Pipeline::sweep)s over defect distributions and `ε` values
//! by re-evaluating probabilities on the compiled diagram — a traversal
//! linear in the ROMDD size instead of a full recompilation per point.
//!
//! [`analyze_direct`] is an alternative pipeline that skips the coded
//! ROBDD and builds the ROMDD directly with multiple-valued operations; it
//! is used for cross-validation and as an ablation of the paper's design
//! decision that "coded ROBDDs are the most efficient way of handling
//! ROMDDs".

use std::time::{Duration, Instant};

use socy_bdd::BddManager;
use socy_dd::{
    catch_governed, CancelToken, CompileOptions, DdError, DdStats, Governor, SiftConfig,
};
use socy_defect::truncation::{select_truncation, truncate_at, Truncation};
use socy_defect::{ComponentProbabilities, DefectDistribution};
use socy_faulttree::Netlist;
use socy_mdd::{MddId, MddManager};
use socy_ordering::{compute_ordering, ComputedOrdering, OrderingSpec};
use socy_sim::{MonteCarloYield, SimError, SimulationOptions};

use crate::degrade::{DegradeLadder, Fidelity};
use crate::delta::SystemDelta;
use crate::encode::GeneralizedFaultTree;
use crate::error::CoreError;

/// Maps a Monte-Carlo setup error onto the equivalent [`CoreError`]
/// (the two crates validate the same preconditions).
fn sim_error(e: SimError) -> CoreError {
    match e {
        SimError::FaultTree(e) => CoreError::FaultTree(e),
        SimError::Defect(e) => CoreError::Defect(e),
        SimError::ComponentCountMismatch { fault_tree, components } => {
            CoreError::ComponentCountMismatch { fault_tree, components }
        }
    }
}

/// Which coded-ROBDD → ROMDD conversion algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConversionAlgorithm {
    /// Top-down memoized conversion (default).
    #[default]
    TopDown,
    /// The paper's bottom-up layer-by-layer procedure.
    Layered,
}

/// Options controlling the yield analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// Absolute error requirement `ε` used to select the truncation `M`.
    pub epsilon: f64,
    /// Variable-ordering specification (multiple-valued ordering + bit-group
    /// ordering).
    pub spec: OrderingSpec,
    /// Conversion algorithm for the coded ROBDD → ROMDD step.
    pub conversion: ConversionAlgorithm,
    /// If set, use this truncation point instead of deriving it from
    /// `epsilon` (the reported error bound is still computed).
    pub fixed_truncation: Option<usize>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-4,
            spec: OrderingSpec::paper_default(),
            conversion: ConversionAlgorithm::TopDown,
            fixed_truncation: None,
        }
    }
}

/// Measurements and results reported by the analysis — the columns of the
/// paper's Table 4 plus a few extras.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// The yield lower bound `Y_M`.
    pub yield_lower_bound: f64,
    /// Guaranteed absolute error `1 − Σ_{k ≤ M} Q'_k`.
    pub error_bound: f64,
    /// Truncation point `M` (number of lethal defects analysed).
    pub truncation: usize,
    /// Truncation point the evaluated decision diagram was compiled at.
    /// Equal to `truncation` for [`analyze`]; during a
    /// [`Pipeline::sweep`] it can be larger, because a diagram compiled
    /// at `M` answers every truncation `≤ M` by zero-padding the `w`
    /// distribution (the size metrics below describe this diagram).
    pub compiled_truncation: usize,
    /// Number of components `C`.
    pub num_components: usize,
    /// Number of gates in the binary-logic description of `G`.
    pub g_gates: usize,
    /// Number of binary variables of the coded ROBDD.
    pub binary_variables: usize,
    /// Size (reachable nodes) of the final coded ROBDD. When the
    /// specification requests sifting this is the *post-sift* size — the
    /// pre-sift size is kept in
    /// [`presift_robdd_size`](YieldReport::presift_robdd_size).
    pub coded_robdd_size: usize,
    /// Size of the coded ROBDD as compiled under the static base
    /// ordering, before dynamic sifting improved it. `None` when the
    /// specification did not request sifting.
    pub presift_robdd_size: Option<usize>,
    /// Peak number of ROBDD nodes allocated while compiling `G`
    /// (including any transient growth during sifting).
    pub robdd_peak: usize,
    /// Size (reachable nodes) of the ROMDD.
    pub romdd_size: usize,
    /// Kernel statistics of the ROBDD manager that compiled `G`
    /// (zeros for [`analyze_direct`], which never builds a coded ROBDD).
    pub robdd_stats: DdStats,
    /// Kernel statistics of the ROMDD manager.
    pub romdd_stats: DdStats,
    /// Ordering specification that was used.
    pub spec: OrderingSpec,
    /// Wall-clock time spent building the coded ROBDD (of the compile
    /// that produced the evaluated diagram, whenever that compile ran).
    pub robdd_time: Duration,
    /// Wall-clock time spent converting to the ROMDD.
    pub conversion_time: Duration,
    /// Wall-clock time of this evaluation. For [`analyze`] and a
    /// [`Pipeline::evaluate`] that had to compile, this includes the
    /// compilation; points of a [`Pipeline::sweep`] never do, because the
    /// sweep compiles every configuration up front — there the compile
    /// cost is carried by `robdd_time` and `conversion_time` alone, so
    /// `total_time` can be far smaller than either.
    pub total_time: Duration,
    /// How this report was obtained: the exact method under the
    /// requested options, a degraded rung of a [`DegradeLadder`], or
    /// Monte-Carlo confidence bounds (then `yield_lower_bound` is the
    /// lower confidence limit and `error_bound` the interval width).
    pub fidelity: Fidelity,
}

/// Result of [`analyze`]: the report plus the artifacts (ROMDD manager,
/// root, probability vectors) for further inspection.
#[derive(Debug)]
pub struct YieldAnalysis {
    /// Summary measurements (Table 4 columns).
    pub report: YieldReport,
    /// The ROMDD manager holding the diagram of `G`.
    pub mdd: MddManager,
    /// Root of the ROMDD of `G`.
    pub romdd_root: MddId,
    /// Per-level value distributions used for the probability evaluation.
    pub probabilities: Vec<Vec<f64>>,
    /// Multiple-valued variable order (0 = `w`, `l` = `v_l`).
    pub mv_order: Vec<usize>,
    /// Human-readable names of the diagram levels.
    pub mv_names: Vec<String>,
}

/// The base compilation's ROBDD manager, kept alive for incremental
/// what-if recompilation: rebuilding a structurally-close variant in this
/// manager turns every gate function shared with the base into a unique
/// table / op-cache hit, so only the changed cofactor pays apply/ITE
/// work. The root handle keeps the base diagram protected against any
/// future garbage collection.
#[derive(Debug)]
struct RetainedRobdd {
    bdd: BddManager,
    _root: socy_dd::Ref,
}

/// One compiled configuration: the generalized fault tree, its ordering
/// and the converted ROMDD, plus the metrics of the ROBDD manager that
/// produced it. The ROBDD manager itself is normally dropped after the
/// conversion (freeing the typically much larger ROBDD arena), unless it
/// was retained for incremental delta recompilation.
#[derive(Debug)]
struct CompiledModel {
    spec: OrderingSpec,
    conversion: ConversionAlgorithm,
    truncation: usize,
    g: GeneralizedFaultTree,
    ordering: ComputedOrdering,
    mdd: MddManager,
    romdd_root: MddId,
    coded_robdd_size: usize,
    presift_robdd_size: Option<usize>,
    robdd_peak: usize,
    robdd_stats: DdStats,
    robdd_time: Duration,
    conversion_time: Duration,
    retained: Option<RetainedRobdd>,
}

fn new_bdd_manager(num_levels: usize, options: &CompileOptions) -> BddManager {
    let mut bdd = match options.op_cache_capacity() {
        0 => BddManager::new(num_levels),
        cap => BddManager::with_cache_capacity(num_levels, cap, cap),
    };
    if !options.complement_edges() {
        bdd.set_complement(false);
    }
    bdd.set_compile_threads(options.compile_threads());
    if options.compile_grain() > 0 {
        bdd.set_par_grain(options.compile_grain());
    }
    bdd
}

fn new_mdd_manager(domains: Vec<usize>, options: &CompileOptions) -> MddManager {
    let mut mdd = match options.op_cache_capacity() {
        0 => MddManager::new(domains),
        cap => MddManager::with_cache_capacity(domains, cap, cap),
    };
    mdd.set_compile_threads(options.compile_threads());
    if options.compile_grain() > 0 {
        mdd.set_par_grain(options.compile_grain());
    }
    mdd
}

impl CompiledModel {
    /// Compiles one configuration under the resource limits of
    /// `options`: a governor (when any limit is set, or a cancellation
    /// token supplied) is armed on both managers, so one node budget and
    /// one deadline bound the ROBDD build *and* the ROMDD conversion
    /// combined. A trip aborts with [`CoreError::Resource`]; the
    /// half-built managers are local to this call and dropped, so the
    /// caller observes no state change — an immediate retry compiles
    /// bit-identically to an undisturbed run.
    fn compile(
        fault_tree: &Netlist,
        truncation: usize,
        spec: OrderingSpec,
        conversion: ConversionAlgorithm,
        options: &CompileOptions,
        retain_robdd: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, CoreError> {
        let governor = Governor::from_options(options, cancel.cloned());
        match catch_governed(governor.as_ref(), || {
            Self::compile_inner(
                fault_tree,
                truncation,
                spec,
                conversion,
                options,
                retain_robdd,
                governor.as_ref(),
            )
        }) {
            Ok(result) => result,
            Err(trip) => Err(CoreError::Resource(trip)),
        }
    }

    fn compile_inner(
        fault_tree: &Netlist,
        truncation: usize,
        spec: OrderingSpec,
        conversion: ConversionAlgorithm,
        options: &CompileOptions,
        retain_robdd: bool,
        governor: Option<&Governor>,
    ) -> Result<Self, CoreError> {
        let g = GeneralizedFaultTree::build(fault_tree, truncation)?;
        let mut ordering = compute_ordering(g.netlist(), g.groups(), &spec)?;

        // Coded ROBDD of G.
        let robdd_start = Instant::now();
        let mut bdd = new_bdd_manager(g.netlist().num_inputs(), options);
        bdd.set_governor(governor.cloned());
        let mut build = bdd.build_netlist(g.netlist(), &ordering.var_level);

        // Dynamic sifting: move whole bit groups (so the layering
        // requirement of the ROBDD → ROMDD conversion is preserved), then
        // rewrite the computed ordering to the sifted arrangement — the
        // layout, domains and probability vectors all derive from it.
        let mut presift_robdd_size = None;
        if let Some(max_growth) = spec.sift_max_growth() {
            presift_robdd_size = Some(build.size);
            let block_sizes: Vec<usize> =
                ordering.mv_order.iter().map(|&mv| g.groups().group(mv).len()).collect();
            let config =
                SiftConfig { max_growth: f64::from(max_growth) / 100.0, ..SiftConfig::default() };
            let mut roots = [build.root];
            let outcome = bdd.reorder_sift_grouped(&mut roots, &block_sizes, &config);
            build.root = roots[0];
            let mut new_of_old = vec![0usize; outcome.level_origin.len()];
            for (new, &old) in outcome.level_origin.iter().enumerate() {
                new_of_old[old] = new;
            }
            for level in ordering.var_level.iter_mut() {
                *level = new_of_old[*level];
            }
            ordering.mv_order =
                outcome.block_origin.iter().map(|&b| ordering.mv_order[b]).collect();
            build.size = outcome.final_size;
            build.peak = bdd.peak_nodes();
        }
        let robdd_time = robdd_start.elapsed();

        // ROMDD conversion. Unless retained for incremental delta
        // recompilation, the ROBDD manager is dropped at the end of this
        // function: only its metrics survive, freeing the (typically much
        // larger) ROBDD arena for the rest of the sweep.
        let layout = g.layout(&ordering);
        let conversion_start = Instant::now();
        let mut mdd = new_mdd_manager(g.mdd_domains(&ordering), options);
        mdd.set_governor(governor.cloned());
        let romdd_root = match conversion {
            ConversionAlgorithm::TopDown => mdd.from_coded_bdd(&bdd, build.root, &layout),
            ConversionAlgorithm::Layered => mdd.from_coded_bdd_layered(&bdd, build.root, &layout),
        };
        let conversion_time = conversion_start.elapsed();

        // The compile completed within its limits: disarm before the
        // managers outlive this governed run (a retained manager must
        // not carry a spent budget into later delta rebuilds).
        bdd.set_governor(None);
        mdd.set_governor(None);

        let robdd_stats = bdd.stats();
        let retained = if retain_robdd {
            let root = bdd.protect(build.root);
            Some(RetainedRobdd { bdd, _root: root })
        } else {
            None
        };
        Ok(Self {
            spec,
            conversion,
            truncation,
            ordering,
            mdd,
            romdd_root,
            coded_robdd_size: build.size,
            presift_robdd_size,
            robdd_peak: build.peak,
            robdd_stats,
            robdd_time,
            conversion_time,
            g,
            retained,
        })
    }

    /// Evaluates the compiled diagram for one `(distribution, ε)` point.
    ///
    /// The requested truncation may be smaller than the compiled one: the
    /// `w` distribution is zero-padded, which makes the extra defect
    /// levels unreachable with probability 1 and reproduces `Y_M` of the
    /// smaller truncation exactly (up to summation order).
    fn evaluate(
        &mut self,
        truncation: &Truncation,
        components: &ComponentProbabilities,
        start: Instant,
    ) -> (YieldReport, Vec<Vec<f64>>) {
        let mut w_dist = truncation.masses().to_vec();
        w_dist.resize(self.truncation + 1, 0.0);
        w_dist.push(truncation.error_bound());
        let probabilities: Vec<Vec<f64>> = self
            .ordering
            .mv_order
            .iter()
            .map(
                |&mv| {
                    if mv == 0 {
                        w_dist.clone()
                    } else {
                        components.conditional_slice().to_vec()
                    }
                },
            )
            .collect();
        let p_g = self.mdd.probability(self.romdd_root, &probabilities);
        let report = YieldReport {
            yield_lower_bound: 1.0 - p_g,
            error_bound: truncation.error_bound(),
            truncation: truncation.truncation(),
            compiled_truncation: self.truncation,
            num_components: self.g.num_components(),
            g_gates: self.g.netlist().num_gates(),
            binary_variables: self.g.netlist().num_inputs(),
            coded_robdd_size: self.coded_robdd_size,
            presift_robdd_size: self.presift_robdd_size,
            robdd_peak: self.robdd_peak,
            romdd_size: self.mdd.node_count(self.romdd_root),
            robdd_stats: self.robdd_stats,
            romdd_stats: self.mdd.stats(),
            spec: self.spec,
            robdd_time: self.robdd_time,
            conversion_time: self.conversion_time,
            total_time: start.elapsed(),
            fidelity: Fidelity::Exact,
        };
        (report, probabilities)
    }

    /// Evaluates a *structural* delta incrementally: the variant fault
    /// tree's generalized `G` is rebuilt inside the retained ROBDD
    /// manager, where hash-consing and the retained op cache make every
    /// subfunction shared with the base an O(1) hit — only the swapped
    /// cofactor pays apply/ITE work. The rebuilt coded ROBDD is then
    /// converted into a fresh ROMDD and evaluated, which reproduces a
    /// from-scratch compile of the variant bit for bit (same canonical
    /// diagram, same per-node float operations).
    ///
    /// Returns `Ok(None)` when the incremental path cannot be taken
    /// soundly and the caller must fall back to a full fresh compile:
    /// when no ROBDD manager was retained, when the specification sifts
    /// dynamically (the base's sifted order reflects the base structure,
    /// so a from-scratch variant compile could legitimately sift
    /// differently), or when the variant's own computed static ordering
    /// differs from the base's (structure-dependent heuristics such as
    /// the paper-default weight heuristic can order a variant
    /// differently, and the retained manager's levels are fixed).
    fn evaluate_structural_delta(
        &mut self,
        variant: &Netlist,
        truncation: &Truncation,
        components: &ComponentProbabilities,
        options: &CompileOptions,
        cancel: Option<&CancelToken>,
        start: Instant,
    ) -> Result<Option<YieldReport>, CoreError> {
        if self.spec.sift_max_growth().is_some() {
            return Ok(None);
        }
        let Some(retained) = self.retained.as_mut() else { return Ok(None) };
        let g = GeneralizedFaultTree::build(variant, self.truncation)?;
        let ordering = compute_ordering(g.netlist(), g.groups(), &self.spec)?;
        if ordering.var_level != self.ordering.var_level
            || ordering.mv_order != self.ordering.mv_order
        {
            return Ok(None);
        }

        let conversion = self.conversion;
        let governor = Governor::from_options(options, cancel.cloned());
        retained.bdd.set_governor(governor.clone());
        let outcome = catch_governed(governor.as_ref(), || {
            let robdd_start = Instant::now();
            let build = retained.bdd.build_netlist(g.netlist(), &ordering.var_level);
            let robdd_time = robdd_start.elapsed();

            let layout = g.layout(&ordering);
            let conversion_start = Instant::now();
            let mut mdd = new_mdd_manager(g.mdd_domains(&ordering), options);
            mdd.set_governor(governor.clone());
            let romdd_root = match conversion {
                ConversionAlgorithm::TopDown => {
                    mdd.from_coded_bdd(&retained.bdd, build.root, &layout)
                }
                ConversionAlgorithm::Layered => {
                    mdd.from_coded_bdd_layered(&retained.bdd, build.root, &layout)
                }
            };
            mdd.set_governor(None);
            (build, robdd_time, mdd, romdd_root, conversion_start.elapsed())
        });
        retained.bdd.set_governor(None);
        let (build, robdd_time, mut mdd, romdd_root, conversion_time) = match outcome {
            Ok(parts) => parts,
            Err(trip) => {
                // The aborted rebuild left garbage in the retained
                // manager; collect it so only the (root-protected) base
                // diagram remains and the manager is reusable — a later
                // rebuild of the same variant is bit-identical to one in
                // an undisturbed manager.
                retained.bdd.gc();
                return Err(CoreError::Resource(trip));
            }
        };

        let mut w_dist = truncation.masses().to_vec();
        w_dist.resize(self.truncation + 1, 0.0);
        w_dist.push(truncation.error_bound());
        let probabilities: Vec<Vec<f64>> = ordering
            .mv_order
            .iter()
            .map(
                |&mv| {
                    if mv == 0 {
                        w_dist.clone()
                    } else {
                        components.conditional_slice().to_vec()
                    }
                },
            )
            .collect();
        let p_g = mdd.probability(romdd_root, &probabilities);
        Ok(Some(YieldReport {
            yield_lower_bound: 1.0 - p_g,
            error_bound: truncation.error_bound(),
            truncation: truncation.truncation(),
            compiled_truncation: self.truncation,
            num_components: g.num_components(),
            g_gates: g.netlist().num_gates(),
            binary_variables: g.netlist().num_inputs(),
            coded_robdd_size: build.size,
            presift_robdd_size: None,
            robdd_peak: build.peak,
            romdd_size: mdd.node_count(romdd_root),
            robdd_stats: retained.bdd.stats(),
            romdd_stats: mdd.stats(),
            spec: self.spec,
            robdd_time,
            conversion_time,
            total_time: start.elapsed(),
            fidelity: Fidelity::Exact,
        }))
    }
}

/// One point of a [`Pipeline::sweep`]: a lethal-defect distribution plus
/// the analysis options to evaluate it under.
#[derive(Clone, Copy)]
pub struct SweepPoint<'a> {
    /// Distribution of the number of lethal defects.
    pub lethal: &'a dyn DefectDistribution,
    /// Options (ε, ordering spec, conversion, fixed truncation).
    pub options: AnalysisOptions,
}

impl std::fmt::Debug for SweepPoint<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPoint").field("options", &self.options).finish_non_exhaustive()
    }
}

/// A reusable, sweepable yield-analysis pipeline for one system.
///
/// A [`Pipeline`] owns the fault tree and component model and caches one
/// compiled decision diagram per `(ordering spec, conversion)`
/// configuration. Because a diagram compiled at truncation `M` answers
/// every truncation `≤ M` (see [`YieldReport::compiled_truncation`]),
/// sweeping a design-space grid costs one compilation per configuration
/// plus one linear-time probability evaluation per point — instead of
/// the full truncate/encode/order/compile/convert chain per point that
/// repeated [`analyze`] calls pay.
///
/// # Example
///
/// ```
/// use soc_yield_core::{AnalysisOptions, Pipeline};
/// use socy_defect::{ComponentProbabilities, NegativeBinomial};
/// use socy_faulttree::Netlist;
///
/// // 1-out-of-2 system: it fails only when both components fail.
/// let mut f = Netlist::new();
/// let a = f.input("a");
/// let b = f.input("b");
/// let both = f.and([a, b]);
/// f.set_output(both);
/// let comps = ComponentProbabilities::new(vec![0.5, 0.5])?;
///
/// let mut pipeline = Pipeline::new(&f, &comps)?;
/// let lethal = NegativeBinomial::new(1.0, 4.0)?;
/// let reports =
///     pipeline.sweep_epsilons(&lethal, &[1e-2, 1e-3, 1e-4], &AnalysisOptions::default())?;
/// assert_eq!(reports.len(), 3);
/// assert_eq!(pipeline.compiled_models(), 1, "one compile serves all three ε values");
/// assert!(reports.windows(2).all(|w| w[0].truncation <= w[1].truncation));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Pipeline {
    fault_tree: Netlist,
    components: ComponentProbabilities,
    models: Vec<CompiledModel>,
    compiles: usize,
    delta_rebuilds: usize,
    /// Kernel knobs every compilation of this pipeline runs under
    /// (see [`Pipeline::set_options`]).
    options: CompileOptions,
    /// Cooperative cancellation token checked by every governed
    /// compilation (see [`Pipeline::set_cancel_token`]).
    cancel: Option<CancelToken>,
}

// Parallel sweep workers (socy-exec) each own a Pipeline and ship the
// reports over a channel; everything here is plain owned data, so the
// thread bounds hold structurally. Asserted so a future regression fails
// to compile here rather than in the executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pipeline>();
    assert_send_sync::<YieldReport>();
};

impl Pipeline {
    /// Creates a pipeline for `fault_tree` under the per-component
    /// lethal-hit probabilities `components`.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the fault tree has no designated
    /// output or its input count disagrees with the component model.
    pub fn new(
        fault_tree: &Netlist,
        components: &ComponentProbabilities,
    ) -> Result<Self, CoreError> {
        fault_tree.output()?;
        if fault_tree.num_inputs() != components.len() {
            return Err(CoreError::ComponentCountMismatch {
                fault_tree: fault_tree.num_inputs(),
                components: components.len(),
            });
        }
        Ok(Self {
            fault_tree: fault_tree.clone(),
            components: components.clone(),
            models: Vec::new(),
            compiles: 0,
            delta_rebuilds: 0,
            options: CompileOptions::default(),
            cancel: None,
        })
    }

    /// Creates a pipeline that compiles under the given kernel
    /// [`CompileOptions`] (see [`Pipeline::new`] for the errors).
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::new`].
    pub fn with_options(
        fault_tree: &Netlist,
        components: &ComponentProbabilities,
        options: CompileOptions,
    ) -> Result<Self, CoreError> {
        let mut pipeline = Self::new(fault_tree, components)?;
        pipeline.options = options;
        Ok(pipeline)
    }

    /// Sets the kernel knobs (compile threads, parallel grain,
    /// complemented edges, op-cache capacity) every subsequent
    /// compilation runs under. These are resource/representation knobs,
    /// not analysis options: every yield, error bound, truncation and
    /// ROMDD node count is bit-identical at every setting, so they
    /// deliberately live outside [`AnalysisOptions`] and never
    /// participate in model reuse keys.
    pub fn set_options(&mut self, options: CompileOptions) {
        self.options = options;
    }

    /// The kernel knobs compilations run under.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// Installs a cooperative cancellation token checked by every
    /// subsequent governed compilation. Cancelling the token makes
    /// in-flight and future compilations fail with
    /// [`CoreError::Resource`]`(`[`DdError::Cancelled`]`)`; evaluations
    /// served from already-compiled diagrams are unaffected. Pass `None`
    /// to detach.
    pub fn set_cancel_token(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// Compat shim over [`Pipeline::set_options`] /
    /// [`CompileOptions::with_compile_threads`].
    pub fn set_compile_threads(&mut self, threads: usize) {
        self.options = self.options.with_compile_threads(threads);
    }

    /// Worker threads used inside a single compilation.
    pub fn compile_threads(&self) -> usize {
        self.options.compile_threads()
    }

    /// Compat shim over [`Pipeline::set_options`] /
    /// [`CompileOptions::with_compile_grain`].
    pub fn set_compile_grain(&mut self, grain: usize) {
        self.options = self.options.with_compile_grain(grain);
    }

    /// Sequential-grain cutoff of the parallel compile sections
    /// (`0` = manager default).
    pub fn compile_grain(&self) -> usize {
        self.options.compile_grain()
    }

    /// Compat shim over [`Pipeline::set_options`] /
    /// [`CompileOptions::with_complement_edges`].
    pub fn set_complement_edges(&mut self, on: bool) {
        self.options = self.options.with_complement_edges(on);
    }

    /// Whether compilations use complemented edges in the ROBDD kernel.
    pub fn complement_edges(&self) -> bool {
        self.options.complement_edges()
    }

    /// The fault tree this pipeline analyses.
    pub fn fault_tree(&self) -> &Netlist {
        &self.fault_tree
    }

    /// The component probability model.
    pub fn components(&self) -> &ComponentProbabilities {
        &self.components
    }

    /// Number of decision diagrams currently compiled (one per
    /// `(ordering spec, conversion)` configuration used so far).
    pub fn compiled_models(&self) -> usize {
        self.models.len()
    }

    /// Total compilations this pipeline has performed over its lifetime,
    /// including recompilations at a larger truncation. Stays constant
    /// across evaluations served entirely from compiled diagrams —
    /// callers (caches, tests) use the delta to prove an evaluation paid
    /// no compilation.
    pub fn compiles(&self) -> usize {
        self.compiles
    }

    /// Live (post-GC) ROMDD nodes across all compiled models — the
    /// steady-state memory cost of keeping this pipeline resident, as
    /// opposed to the transient `peak_nodes` high-water mark. Cache
    /// eviction budgets are charged against this.
    pub fn live_nodes(&self) -> usize {
        self.models.iter().map(|m| m.mdd.stats().live_nodes).sum()
    }

    /// Drops all compiled diagrams, releasing their memory.
    pub fn clear(&mut self) {
        self.models.clear();
    }

    fn truncation_for(
        &self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
    ) -> Result<Truncation, CoreError> {
        Ok(match options.fixed_truncation {
            Some(m) => truncate_at(lethal, m)?,
            None => select_truncation(lethal, options.epsilon)?,
        })
    }

    /// Index of a model usable for truncation `m` under `(spec,
    /// conversion)`, compiling (or recompiling at the larger `m`) when
    /// necessary. With `retain_robdd` the model must additionally hold
    /// its ROBDD manager for incremental delta recompilation; a resident
    /// model that dropped its manager is recompiled once with retention.
    fn ensure_model_inner(
        &mut self,
        m: usize,
        spec: OrderingSpec,
        conversion: ConversionAlgorithm,
        retain_robdd: bool,
    ) -> Result<usize, CoreError> {
        let same_config = |c: &CompiledModel| c.spec == spec && c.conversion == conversion;
        if let Some(i) = self.models.iter().position(|c| {
            same_config(c) && c.truncation >= m && (!retain_robdd || c.retained.is_some())
        }) {
            return Ok(i);
        }
        // Never shrink: a deeper resident diagram keeps serving every
        // smaller truncation, so recompiles (for depth or retention)
        // happen at the largest truncation seen for this configuration.
        let m = self
            .models
            .iter()
            .filter(|c| same_config(c))
            .map(|c| c.truncation)
            .max()
            .unwrap_or(0)
            .max(m);
        let model = CompiledModel::compile(
            &self.fault_tree,
            m,
            spec,
            conversion,
            &self.options,
            retain_robdd,
            self.cancel.as_ref(),
        )?;
        self.compiles += 1;
        match self.models.iter().position(same_config) {
            Some(i) => {
                self.models[i] = model;
                Ok(i)
            }
            None => {
                self.models.push(model);
                Ok(self.models.len() - 1)
            }
        }
    }

    /// Index of a model usable for truncation `m` under `(spec,
    /// conversion)`, compiling (or recompiling at the larger `m`) when
    /// necessary.
    fn ensure_model(
        &mut self,
        m: usize,
        spec: OrderingSpec,
        conversion: ConversionAlgorithm,
    ) -> Result<usize, CoreError> {
        self.ensure_model_inner(m, spec, conversion, false)
    }

    fn evaluate_full(
        &mut self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
    ) -> Result<(YieldReport, Vec<Vec<f64>>), CoreError> {
        let start = Instant::now();
        let truncation = self.truncation_for(lethal, options)?;
        let idx = self.ensure_model(truncation.truncation(), options.spec, options.conversion)?;
        Ok(self.models[idx].evaluate(&truncation, &self.components, start))
    }

    /// Evaluates one `(distribution, options)` point, reusing a compiled
    /// diagram when one covers the required truncation.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the truncation point cannot be
    /// reached or the ordering specification is invalid.
    pub fn evaluate(
        &mut self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
    ) -> Result<YieldReport, CoreError> {
        self.evaluate_full(lethal, options).map(|(report, _)| report)
    }

    /// Evaluates every point of a design-space sweep with artifact reuse:
    /// each `(ordering spec, conversion)` configuration is compiled once,
    /// at the largest truncation any of its points needs, and every point
    /// then costs one probability evaluation.
    ///
    /// # Errors
    ///
    /// Fails on the first point whose truncation selection or compilation
    /// fails; reports of earlier points are discarded.
    pub fn sweep<'a, I>(&mut self, points: I) -> Result<Vec<YieldReport>, CoreError>
    where
        I: IntoIterator<Item = SweepPoint<'a>>,
    {
        let points: Vec<SweepPoint<'a>> = points.into_iter().collect();
        let mut truncations = Vec::with_capacity(points.len());
        for point in &points {
            truncations.push(self.truncation_for(point.lethal, &point.options)?);
        }
        // Compile each configuration once, at the largest truncation it needs.
        let mut maxima: Vec<(OrderingSpec, ConversionAlgorithm, usize)> = Vec::new();
        for (point, trunc) in points.iter().zip(&truncations) {
            let (spec, conversion) = (point.options.spec, point.options.conversion);
            match maxima.iter_mut().find(|(s, c, _)| *s == spec && *c == conversion) {
                Some((_, _, m)) => *m = (*m).max(trunc.truncation()),
                None => maxima.push((spec, conversion, trunc.truncation())),
            }
        }
        for (spec, conversion, m) in maxima {
            self.ensure_model(m, spec, conversion)?;
        }
        points
            .iter()
            .zip(&truncations)
            .map(|(point, trunc)| {
                let start = Instant::now();
                let idx = self.ensure_model(
                    trunc.truncation(),
                    point.options.spec,
                    point.options.conversion,
                )?;
                Ok(self.models[idx].evaluate(trunc, &self.components, start).0)
            })
            .collect()
    }

    /// Sweeps the error requirement `ε` for one distribution, keeping the
    /// other options fixed.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::sweep`].
    pub fn sweep_epsilons(
        &mut self,
        lethal: &dyn DefectDistribution,
        epsilons: &[f64],
        options: &AnalysisOptions,
    ) -> Result<Vec<YieldReport>, CoreError> {
        self.sweep(epsilons.iter().map(|&epsilon| SweepPoint {
            lethal,
            options: AnalysisOptions { epsilon, fixed_truncation: None, ..*options },
        }))
    }

    /// Sweeps a set of lethal-defect distributions (e.g. a λ or α grid)
    /// under fixed options.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::sweep`].
    pub fn sweep_distributions<'a, I>(
        &mut self,
        lethals: I,
        options: &AnalysisOptions,
    ) -> Result<Vec<YieldReport>, CoreError>
    where
        I: IntoIterator<Item = &'a dyn DefectDistribution>,
    {
        self.sweep(lethals.into_iter().map(|lethal| SweepPoint { lethal, options: *options }))
    }

    /// Incremental recompilations performed by
    /// [`sweep_deltas`](Pipeline::sweep_deltas): structural variants
    /// rebuilt inside a retained ROBDD manager instead of compiled from
    /// scratch. Like [`compiles`](Pipeline::compiles), callers use the
    /// delta of this counter to prove which path an evaluation took.
    pub fn delta_rebuilds(&self) -> usize {
        self.delta_rebuilds
    }

    /// Evaluates a family of what-if [`SystemDelta`]s against the base
    /// system, under one `(distribution, options)` point so the whole
    /// family shares one truncation `M`.
    ///
    /// The base configuration is compiled (or reused) once; each delta is
    /// then served by the cheapest sound path:
    ///
    /// * **swap-only deltas** (distribution overrides, lethality flips,
    ///   whole-model replacements — no structural change) re-evaluate the
    ///   resident ROMDD with the materialized component probabilities:
    ///   zero kernel work, a traversal linear in the ROMDD size.
    /// * **structural deltas** (subtree swaps) are rebuilt inside the
    ///   retained base ROBDD manager, where hash-consing turns every
    ///   subfunction shared with the base into a cache hit — only the
    ///   changed cofactor pays apply/ITE work
    ///   ([`delta_rebuilds`](Pipeline::delta_rebuilds) counts these).
    /// * when the incremental path is unsound for a structural delta
    ///   (sifted specification, or the variant's own computed ordering
    ///   differs from the base's), it falls back to a full fresh compile
    ///   of the materialized variant, counted by
    ///   [`compiles`](Pipeline::compiles).
    ///
    /// Every path reproduces a from-scratch compile of the materialized
    /// variant bit for bit — same yields, error bounds, truncations and
    /// ROMDD node counts — provided the base was compiled at exactly the
    /// family's truncation (always true for a pipeline whose first use is
    /// the delta sweep; a deeper resident diagram answers with the usual
    /// zero-padded evaluation instead, exact up to summation order).
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the truncation selection or a
    /// compilation fails, or a delta is inconsistent with the base system
    /// ([`CoreError::InvalidDelta`]).
    pub fn sweep_deltas(
        &mut self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
        deltas: &[SystemDelta],
    ) -> Result<Vec<YieldReport>, CoreError> {
        let truncation = self.truncation_for(lethal, options)?;
        // Retaining the base ROBDD manager only pays off when a
        // structural delta can actually use it (sifted bases never can).
        let needs_retained =
            options.spec.sift_max_growth().is_none() && deltas.iter().any(|d| !d.is_swap_only());
        let idx = self.ensure_model_inner(
            truncation.truncation(),
            options.spec,
            options.conversion,
            needs_retained,
        )?;
        let mut reports = Vec::with_capacity(deltas.len());
        for delta in deltas {
            let start = Instant::now();
            if delta.is_swap_only() {
                let components = delta.materialize_components(&self.components)?;
                reports.push(self.models[idx].evaluate(&truncation, &components, start).0);
                continue;
            }
            let (variant, components) = delta.materialize(&self.fault_tree, &self.components)?;
            if let Some(report) = self.models[idx].evaluate_structural_delta(
                &variant,
                &truncation,
                &components,
                &self.options,
                self.cancel.as_ref(),
                start,
            )? {
                self.delta_rebuilds += 1;
                reports.push(report);
                continue;
            }
            // Unsound to recompile incrementally: compile the variant
            // from scratch. The variant model is deliberately not cached
            // in `models` — it describes a different system.
            let mut model = CompiledModel::compile(
                &variant,
                truncation.truncation(),
                options.spec,
                options.conversion,
                &self.options,
                false,
                self.cancel.as_ref(),
            )?;
            self.compiles += 1;
            reports.push(model.evaluate(&truncation, &components, start).0);
        }
        Ok(reports)
    }

    /// Evaluates one point like [`Pipeline::evaluate`], but retreats down
    /// `ladder` instead of failing when the governed compilation exceeds
    /// its resource limits ([`CompileOptions::node_budget`] /
    /// [`CompileOptions::deadline_ms`]).
    ///
    /// Each exact-method rung recompiles under the same limits (fresh
    /// governor per attempt) with the rung's cheaper
    /// [`AnalysisOptions`]; when every rung is over budget the analysis
    /// falls back to [`Pipeline::evaluate_bounds`]. The returned report's
    /// [`fidelity`](YieldReport::fidelity) says which rung answered.
    ///
    /// Cancellation is never degraded around: a cancelled compilation
    /// returns [`CoreError::Resource`]`(`[`DdError::Cancelled`]`)`
    /// immediately — the caller asked for the work to stop, not for a
    /// cheaper version of it.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] on cancellation or when the analysis fails
    /// for a non-resource reason (malformed inputs, unreachable
    /// truncation, invalid ordering) — resource exhaustion itself is
    /// always absorbed by the Monte-Carlo fallback.
    pub fn evaluate_governed(
        &mut self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
        ladder: &DegradeLadder,
    ) -> Result<YieldReport, CoreError> {
        match self.evaluate(lethal, options) {
            Ok(report) => return Ok(report),
            Err(CoreError::Resource(DdError::Cancelled)) => {
                return Err(CoreError::Resource(DdError::Cancelled));
            }
            Err(CoreError::Resource(_)) => {}
            Err(e) => return Err(e),
        }
        for step in &ladder.steps {
            let degraded = step.apply(options);
            match self.evaluate(lethal, &degraded) {
                Ok(mut report) => {
                    report.fidelity = Fidelity::Degraded { step: *step };
                    return Ok(report);
                }
                Err(CoreError::Resource(DdError::Cancelled)) => {
                    return Err(CoreError::Resource(DdError::Cancelled));
                }
                Err(CoreError::Resource(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.evaluate_bounds(lethal, options, ladder)
    }

    /// Estimates the yield by `socy-sim` Monte-Carlo sampling — the final
    /// rung of the degradation ladder, and directly useful when a caller
    /// wants statistical bounds without attempting a compile at all
    /// (e.g. a request with a zero time budget).
    ///
    /// The returned report carries [`Fidelity::Bounds`]:
    /// `yield_lower_bound` is the lower confidence limit at `ladder.z`
    /// standard errors and `error_bound` the interval width. Diagram-side
    /// fields (sizes, stats, times) are zero — no diagram was built. For
    /// a fixed `(samples, seed)` the bounds are deterministic and
    /// independent of thread counts.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when the fault tree or defect model is
    /// malformed.
    pub fn evaluate_bounds(
        &self,
        lethal: &dyn DefectDistribution,
        options: &AnalysisOptions,
        ladder: &DegradeLadder,
    ) -> Result<YieldReport, CoreError> {
        let start = Instant::now();
        let sim = MonteCarloYield::new(
            &self.fault_tree,
            &self.components,
            lethal,
            SimulationOptions::default(),
        )
        .map_err(sim_error)?;
        let estimate = sim.run(ladder.samples, ladder.seed);
        let (lower, upper) = estimate.confidence_interval(ladder.z);
        Ok(YieldReport {
            yield_lower_bound: lower,
            error_bound: upper - lower,
            truncation: 0,
            compiled_truncation: 0,
            num_components: self.components.len(),
            g_gates: 0,
            binary_variables: 0,
            coded_robdd_size: 0,
            presift_robdd_size: None,
            robdd_peak: 0,
            romdd_size: 0,
            robdd_stats: DdStats::default(),
            romdd_stats: DdStats::default(),
            spec: options.spec,
            robdd_time: Duration::ZERO,
            conversion_time: Duration::ZERO,
            total_time: start.elapsed(),
            fidelity: Fidelity::Bounds { lower, upper },
        })
    }
}

/// Runs the combinatorial yield method (coded ROBDD → ROMDD pipeline).
///
/// `fault_tree` is the gate-level fault tree `F` over the component failed
/// states (input variable `i` ⇔ component `i`), `components` the lethal-hit
/// probabilities `P_i`, and `lethal` the distribution of the number of
/// **lethal** defects `Q'` (use
/// [`socy_defect::NegativeBinomial::thinned`] or
/// [`socy_defect::lethal::thin_empirical`] to obtain it from a raw defect
/// distribution).
///
/// This is a one-shot convenience over [`Pipeline`]; design-space studies
/// evaluating several `(distribution, ε, ordering)` points should build a
/// [`Pipeline`] and [`sweep`](Pipeline::sweep) it instead.
///
/// # Errors
///
/// Returns a [`CoreError`] when the fault tree is malformed, the component
/// count disagrees with the probability model, the truncation point cannot
/// be reached, or the ordering specification is invalid.
pub fn analyze(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<YieldAnalysis, CoreError> {
    let mut pipeline = Pipeline::new(fault_tree, components)?;
    let (report, probabilities) = pipeline.evaluate_full(lethal, options)?;
    let model = pipeline.models.pop().expect("exactly one model was compiled");
    let mv_names = model.g.mv_names(&model.ordering);
    Ok(YieldAnalysis {
        report,
        mdd: model.mdd,
        romdd_root: model.romdd_root,
        probabilities,
        mv_order: model.ordering.mv_order,
        mv_names,
    })
}

fn prepare(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<(GeneralizedFaultTree, ComputedOrdering, Truncation), CoreError> {
    fault_tree.output()?;
    if fault_tree.num_inputs() != components.len() {
        return Err(CoreError::ComponentCountMismatch {
            fault_tree: fault_tree.num_inputs(),
            components: components.len(),
        });
    }
    let truncation = match options.fixed_truncation {
        Some(m) => truncate_at(lethal, m)?,
        None => select_truncation(lethal, options.epsilon)?,
    };
    let g = GeneralizedFaultTree::build(fault_tree, truncation.truncation())?;
    let ordering = compute_ordering(g.netlist(), g.groups(), &options.spec)?;
    Ok((g, ordering, truncation))
}

/// Runs the yield analysis building the ROMDD *directly* with
/// multiple-valued operations (no coded ROBDD). The report's
/// `coded_robdd_size`, `robdd_peak` and `robdd_stats` fields are zero in
/// this mode; the `romdd_size` and the yield must agree with [`analyze`].
/// A [`OrderingSpec::Sifted`] specification contributes only its static
/// base here — dynamic sifting is a feature of the compiled
/// coded-ROBDD pipeline.
///
/// # Errors
///
/// Same as [`analyze`].
pub fn analyze_direct(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<YieldAnalysis, CoreError> {
    let start = Instant::now();
    let (g, ordering, truncation) = prepare(fault_tree, components, lethal, options)?;
    let m = g.truncation();

    // Position of each multiple-valued variable in the diagram order.
    let mut position = vec![0usize; ordering.mv_order.len()];
    for (pos, &mv) in ordering.mv_order.iter().enumerate() {
        position[mv] = pos;
    }

    let conversion_start = Instant::now();
    let mut mdd = MddManager::new(g.mdd_domains(&ordering));
    let w_level = position[0];
    // x_i = OR_l ( I_{>=l}(w) AND I_{i}(v_l) )   (domain value i-1 encodes component i)
    let mut x = Vec::with_capacity(g.num_components());
    for component in 0..g.num_components() {
        let mut terms = Vec::with_capacity(m);
        for (l, &pos) in position.iter().enumerate().skip(1).take(m) {
            let ge = mdd.value_at_least(w_level, l);
            let hit = mdd.value_is(pos, component);
            terms.push(mdd.and(ge, hit));
        }
        x.push(mdd.or_many(terms));
    }
    // F over the x_i, evaluated gate by gate with MDD operations.
    let f_root = build_fault_tree_mdd(&mut mdd, fault_tree, &x)?;
    let clamp = mdd.value_is(w_level, m + 1);
    let romdd_root = mdd.or(clamp, f_root);
    let conversion_time = conversion_start.elapsed();

    let probabilities = g.probability_vectors(&ordering, &truncation, components);
    let p_g = mdd.probability(romdd_root, &probabilities);
    let report = YieldReport {
        yield_lower_bound: 1.0 - p_g,
        error_bound: truncation.error_bound(),
        truncation: truncation.truncation(),
        compiled_truncation: truncation.truncation(),
        num_components: g.num_components(),
        g_gates: g.netlist().num_gates(),
        binary_variables: g.netlist().num_inputs(),
        coded_robdd_size: 0,
        presift_robdd_size: None,
        robdd_peak: 0,
        romdd_size: mdd.node_count(romdd_root),
        robdd_stats: DdStats::default(),
        romdd_stats: mdd.stats(),
        spec: options.spec,
        robdd_time: Duration::ZERO,
        conversion_time,
        total_time: start.elapsed(),
        fidelity: Fidelity::Exact,
    };
    let mv_names = g.mv_names(&ordering);
    Ok(YieldAnalysis {
        report,
        mdd,
        romdd_root,
        probabilities,
        mv_order: ordering.mv_order,
        mv_names,
    })
}

/// Evaluates the fault tree `F` gate by gate over MDD operands (one per
/// component / input variable).
fn build_fault_tree_mdd(
    mdd: &mut MddManager,
    fault_tree: &Netlist,
    inputs: &[MddId],
) -> Result<MddId, CoreError> {
    use socy_faulttree::GateKind;
    let output = fault_tree.output()?;
    let mut results: Vec<MddId> = Vec::with_capacity(fault_tree.len());
    for (id, gate) in fault_tree.iter() {
        let value = match gate.kind {
            GateKind::Input => inputs[fault_tree.var_of(id).expect("input has a variable").index()],
            GateKind::Const(c) => mdd.constant(c),
            GateKind::Not => {
                let a = results[gate.fanin[0].index()];
                mdd.not(a)
            }
            GateKind::And => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.and_many(ops)
            }
            GateKind::Or => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.or_many(ops)
            }
            GateKind::Xor => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                let mut acc = mdd.zero();
                for op in ops {
                    acc = mdd.xor(acc, op);
                }
                acc
            }
            GateKind::AtLeast(k) => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.at_least(k as usize, &ops)
            }
        };
        results.push(value);
    }
    Ok(results[output.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_defect::{Empirical, NegativeBinomial};
    use socy_ordering::{GroupOrdering, MvOrdering};

    /// F = x1·x2 + x3 (Figure 2).
    fn figure2() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        nl
    }

    fn hand_yield(q: &[f64], p: &[f64], m: usize) -> f64 {
        // Direct enumeration of Y_M = Σ_k Q'_k Y_k for F = x1 x2 + x3.
        let c = p.len();
        let mut total = 0.0;
        for (k, &qk) in q.iter().enumerate().take(m + 1) {
            // enumerate component choices for k defects
            let combos = c.pow(k as u32);
            let mut yk = 0.0;
            for combo in 0..combos {
                let mut rest = combo;
                let mut failed = vec![false; c];
                let mut weight = 1.0;
                for _ in 0..k {
                    let comp = rest % c;
                    rest /= c;
                    failed[comp] = true;
                    weight *= p[comp];
                }
                let f_val = (failed[0] && failed[1]) || failed[2];
                if !f_val {
                    yk += weight;
                }
            }
            total += qk * yk;
        }
        total
    }

    #[test]
    fn pipeline_matches_hand_enumeration() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = Empirical::new(vec![0.5, 0.3, 0.15, 0.05]).unwrap();
        let options = AnalysisOptions { fixed_truncation: Some(2), ..AnalysisOptions::default() };
        let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
        let expect = hand_yield(&[0.5, 0.3, 0.15], &[0.2, 0.3, 0.5], 2);
        assert!(
            (analysis.report.yield_lower_bound - expect).abs() < 1e-12,
            "got {}, expected {expect}",
            analysis.report.yield_lower_bound
        );
        assert_eq!(analysis.report.truncation, 2);
        assert_eq!(analysis.report.compiled_truncation, 2);
        assert!((analysis.report.error_bound - 0.05).abs() < 1e-12);
        assert!(analysis.report.coded_robdd_size > 0);
        assert!(analysis.report.robdd_peak >= analysis.report.coded_robdd_size);
        assert!(analysis.report.romdd_size > 0);
        assert_eq!(analysis.report.num_components, 3);
        assert_eq!(analysis.mv_order.len(), 3);
        assert_eq!(analysis.mv_names.len(), 3);
        assert_eq!(analysis.probabilities.len(), 3);
        // Kernel statistics are populated for both managers.
        assert_eq!(analysis.report.robdd_stats.peak_nodes, analysis.report.robdd_peak);
        assert!(analysis.report.robdd_stats.op_cache_misses > 0);
        assert_eq!(analysis.report.romdd_stats.peak_nodes, analysis.mdd.peak_nodes());
    }

    #[test]
    fn direct_mdd_agrees_with_coded_robdd_pipeline() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let options = AnalysisOptions::default();
        let coded = analyze(&f, &comps, &lethal, &options).unwrap();
        let direct = analyze_direct(&f, &comps, &lethal, &options).unwrap();
        assert!((coded.report.yield_lower_bound - direct.report.yield_lower_bound).abs() < 1e-12);
        // Both construct the same canonical ROMDD, so the sizes must agree too.
        assert_eq!(coded.report.romdd_size, direct.report.romdd_size);
        assert_eq!(direct.report.robdd_stats, DdStats::default());
    }

    #[test]
    fn layered_conversion_agrees_with_top_down() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.4, 0.4, 0.2]).unwrap();
        let lethal = NegativeBinomial::new(2.0, 0.25).unwrap();
        let top_down = analyze(&f, &comps, &lethal, &AnalysisOptions::default()).unwrap();
        let layered = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions {
                conversion: ConversionAlgorithm::Layered,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(top_down.report.romdd_size, layered.report.romdd_size);
        assert!(
            (top_down.report.yield_lower_bound - layered.report.yield_lower_bound).abs() < 1e-15
        );
    }

    #[test]
    fn all_orderings_give_the_same_yield() {
        // The yield is a property of the function, not of the variable order.
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.25, 0.25, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.5).unwrap();
        let mut yields = Vec::new();
        for mv in MvOrdering::ALL {
            for group in [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst] {
                let spec = OrderingSpec::new(mv, group).unwrap();
                let options = AnalysisOptions { spec, ..AnalysisOptions::default() };
                let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
                yields.push(analysis.report.yield_lower_bound);
            }
        }
        for y in &yields {
            assert!((y - yields[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn sifted_spec_preserves_the_yield_and_reports_both_sizes() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions::default();
        let fixed = analyze(&f, &comps, &lethal, &options).unwrap();
        assert_eq!(fixed.report.presift_robdd_size, None, "static runs do not sift");
        let sifted_options =
            AnalysisOptions { spec: OrderingSpec::paper_default().with_sifting(300), ..options };
        let sifted = analyze(&f, &comps, &lethal, &sifted_options).unwrap();
        // Sifting permutes variables, never the function: the yield is a
        // property of G and the distributions alone.
        assert!(
            (fixed.report.yield_lower_bound - sifted.report.yield_lower_bound).abs() < 1e-12,
            "static {} vs sifted {}",
            fixed.report.yield_lower_bound,
            sifted.report.yield_lower_bound
        );
        let presift = sifted.report.presift_robdd_size.expect("sifted runs record both sizes");
        assert_eq!(presift, fixed.report.coded_robdd_size);
        assert!(sifted.report.coded_robdd_size <= presift, "sifting never ends worse");
        assert!(sifted.report.spec.label().ends_with("+sift"));
        // The sifted ROMDD still answers every evaluation consistently.
        assert!(sifted.report.romdd_size > 0);
        // A sweep through a pipeline with a sifted spec compiles once and
        // agrees with static evaluations of the same ε points.
        let epsilons = [1e-2, 1e-4];
        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let reports = pipeline.sweep_epsilons(&lethal, &epsilons, &sifted_options).unwrap();
        assert_eq!(pipeline.compiled_models(), 1);
        for (report, &epsilon) in reports.iter().zip(&epsilons) {
            assert!(report.presift_robdd_size.is_some());
            let exact =
                analyze(&f, &comps, &lethal, &AnalysisOptions { epsilon, ..options }).unwrap();
            assert_eq!(report.truncation, exact.report.truncation);
            assert!(
                (report.yield_lower_bound - exact.report.yield_lower_bound).abs() < 1e-12,
                "ε={epsilon}: sifted sweep {} vs static {}",
                report.yield_lower_bound,
                exact.report.yield_lower_bound
            );
        }
    }

    #[test]
    fn error_bound_meets_epsilon() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
        let lethal = NegativeBinomial::new(2.0, 0.25).unwrap();
        for &eps in &[1e-2, 1e-4, 1e-6] {
            let options = AnalysisOptions { epsilon: eps, ..AnalysisOptions::default() };
            let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
            assert!(analysis.report.error_bound <= eps);
        }
        // A tighter epsilon never decreases the truncation point.
        let loose = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions { epsilon: 1e-2, ..AnalysisOptions::default() },
        )
        .unwrap();
        let tight = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions { epsilon: 1e-6, ..AnalysisOptions::default() },
        )
        .unwrap();
        assert!(tight.report.truncation >= loose.report.truncation);
    }

    #[test]
    fn component_count_mismatch_is_detected() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.5, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let err = analyze(&f, &comps, &lethal, &AnalysisOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::ComponentCountMismatch { .. }));
        let err = Pipeline::new(&f, &comps).unwrap_err();
        assert!(matches!(err, CoreError::ComponentCountMismatch { .. }));
    }

    #[test]
    fn lethality_below_one_uses_thinned_distribution() {
        // With P_L = 0.5 the lethal distribution is thinner, so the same epsilon
        // needs a smaller truncation point than with P_L = 1.
        let f = figure2();
        let raw = NegativeBinomial::new(2.0, 0.25).unwrap();
        let comps_full = ComponentProbabilities::from_weights(&[1.0, 1.0, 1.0], 1.0).unwrap();
        let comps_half = ComponentProbabilities::from_weights(&[1.0, 1.0, 1.0], 0.5).unwrap();
        let lethal_full = raw.thinned(comps_full.lethality()).unwrap();
        let lethal_half = raw.thinned(comps_half.lethality()).unwrap();
        let a_full = analyze(&f, &comps_full, &lethal_full, &AnalysisOptions::default()).unwrap();
        let a_half = analyze(&f, &comps_half, &lethal_half, &AnalysisOptions::default()).unwrap();
        assert!(a_half.report.truncation < a_full.report.truncation);
        assert!(a_half.report.yield_lower_bound > a_full.report.yield_lower_bound);
    }

    #[test]
    fn pipeline_evaluate_matches_analyze() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let one_shot = analyze(&f, &comps, &lethal, &options).unwrap();
        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let report = pipeline.evaluate(&lethal, &options).unwrap();
        assert_eq!(report.yield_lower_bound, one_shot.report.yield_lower_bound);
        assert_eq!(report.romdd_size, one_shot.report.romdd_size);
        assert_eq!(report.coded_robdd_size, one_shot.report.coded_robdd_size);
        assert_eq!(report.robdd_peak, one_shot.report.robdd_peak);
        // A second evaluation at the same point reuses the compiled model.
        let again = pipeline.evaluate(&lethal, &options).unwrap();
        assert_eq!(pipeline.compiled_models(), 1);
        assert_eq!(again.yield_lower_bound, report.yield_lower_bound);
    }

    #[test]
    fn sweep_reuses_one_compile_per_configuration() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions::default();
        let epsilons = [1e-2, 1e-3, 1e-5];
        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let reports = pipeline.sweep_epsilons(&lethal, &epsilons, &options).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(pipeline.compiled_models(), 1, "one diagram must serve all ε values");
        let max_m = reports.iter().map(|r| r.truncation).max().unwrap();
        for (report, &epsilon) in reports.iter().zip(&epsilons) {
            assert!(report.error_bound <= epsilon);
            assert_eq!(report.compiled_truncation, max_m);
            // The padded evaluation must agree with a fresh exact-truncation run.
            let exact =
                analyze(&f, &comps, &lethal, &AnalysisOptions { epsilon, ..options }).unwrap();
            assert_eq!(report.truncation, exact.report.truncation);
            assert!(
                (report.yield_lower_bound - exact.report.yield_lower_bound).abs() < 1e-12,
                "ε={epsilon}: swept {} vs exact {}",
                report.yield_lower_bound,
                exact.report.yield_lower_bound
            );
        }
    }

    #[test]
    fn sweep_distributions_and_specs() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.25, 0.35, 0.4]).unwrap();
        let nb1 = NegativeBinomial::new(0.5, 4.0).unwrap();
        let nb2 = NegativeBinomial::new(1.5, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let reports = pipeline
            .sweep_distributions(
                [&nb1 as &dyn DefectDistribution, &nb2 as &dyn DefectDistribution],
                &options,
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(pipeline.compiled_models(), 1);
        assert!(reports[0].yield_lower_bound > reports[1].yield_lower_bound);
        // A second ordering spec compiles its own model but reuses it across points.
        let other_spec = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap();
        let points = [&nb1, &nb2].map(|lethal| SweepPoint {
            lethal: lethal as &dyn DefectDistribution,
            options: AnalysisOptions { spec: other_spec, ..options },
        });
        let other = pipeline.sweep(points).unwrap();
        assert_eq!(pipeline.compiled_models(), 2);
        for (a, b) in reports.iter().zip(&other) {
            assert!((a.yield_lower_bound - b.yield_lower_bound).abs() < 1e-12);
        }
    }

    /// The OR of the same three inputs as [`figure2`] — a replacement
    /// module for its x1·x2 subtree.
    fn or_module() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        nl.input("x3");
        let or = nl.or([x1, x2]);
        nl.set_output(or);
        nl
    }

    fn and_gate_of(f: &Netlist) -> socy_faulttree::NodeId {
        use socy_faulttree::GateKind;
        f.iter().find(|(_, g)| matches!(g.kind, GateKind::And)).expect("has an AND gate").0
    }

    #[test]
    fn delta_sweep_matches_from_scratch_compiles() {
        use crate::delta::SystemDelta;

        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };

        let deltas = [
            SystemDelta::named("base"),
            SystemDelta::named("x2-weak").with_component_probability(1, 0.25),
            SystemDelta::named("x3-immune").with_component_probability(2, 0.0),
            SystemDelta::named("and-becomes-or")
                .with_subtree_swap(&f, and_gate_of(&f), &or_module())
                .unwrap(),
        ];

        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let reports = pipeline.sweep_deltas(&lethal, &options, &deltas).unwrap();
        assert_eq!(reports.len(), deltas.len());
        assert_eq!(pipeline.compiles(), 1, "the family shares one base compile");
        assert_eq!(pipeline.delta_rebuilds(), 1, "the structural delta rebuilt incrementally");

        for (report, delta) in reports.iter().zip(&deltas) {
            let (variant, components) = delta.materialize(&f, &comps).unwrap();
            let scratch = analyze(&variant, &components, &lethal, &options).unwrap();
            assert_eq!(
                report.yield_lower_bound,
                scratch.report.yield_lower_bound,
                "{}: delta path must be bit-identical to a from-scratch compile",
                delta.name()
            );
            assert_eq!(report.truncation, scratch.report.truncation, "{}", delta.name());
            assert_eq!(report.error_bound, scratch.report.error_bound, "{}", delta.name());
            assert_eq!(report.romdd_size, scratch.report.romdd_size, "{}", delta.name());
        }
        // The base point reproduces the plain evaluation.
        let plain = analyze(&f, &comps, &lethal, &options).unwrap();
        assert_eq!(reports[0].yield_lower_bound, plain.report.yield_lower_bound);
        // Swap-only deltas move the yield in the expected direction.
        assert!(reports[2].yield_lower_bound > reports[0].yield_lower_bound);
    }

    #[test]
    fn sifted_delta_sweep_falls_back_to_fresh_compiles() {
        use crate::delta::SystemDelta;

        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions {
            epsilon: 1e-2,
            spec: OrderingSpec::paper_default().with_sifting(300),
            ..AnalysisOptions::default()
        };
        let deltas = [SystemDelta::named("or-swap")
            .with_subtree_swap(&f, and_gate_of(&f), &or_module())
            .unwrap()];

        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let reports = pipeline.sweep_deltas(&lethal, &options, &deltas).unwrap();
        assert_eq!(pipeline.delta_rebuilds(), 0, "sifted bases never rebuild incrementally");
        assert_eq!(pipeline.compiles(), 2, "base compile plus the fallback variant compile");
        let (variant, components) = deltas[0].materialize(&f, &comps).unwrap();
        let scratch = analyze(&variant, &components, &lethal, &options).unwrap();
        assert_eq!(reports[0].yield_lower_bound, scratch.report.yield_lower_bound);
        assert_eq!(reports[0].romdd_size, scratch.report.romdd_size);
    }

    #[test]
    fn fixed_truncation_points_sweep_without_recompiling_downward() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = Empirical::new(vec![0.4, 0.3, 0.2, 0.05, 0.05]).unwrap();
        let mut pipeline = Pipeline::new(&f, &comps).unwrap();
        let base = AnalysisOptions::default();
        let points = [4usize, 2, 3].map(|m| SweepPoint {
            lethal: &lethal as &dyn DefectDistribution,
            options: AnalysisOptions { fixed_truncation: Some(m), ..base },
        });
        let reports = pipeline.sweep(points).unwrap();
        assert_eq!(pipeline.compiled_models(), 1);
        assert_eq!(reports[0].compiled_truncation, 4);
        assert_eq!(reports[1].truncation, 2);
        for (report, m) in reports.iter().zip([4usize, 2, 3]) {
            let exact = analyze(
                &f,
                &comps,
                &lethal,
                &AnalysisOptions { fixed_truncation: Some(m), ..base },
            )
            .unwrap();
            assert!((report.yield_lower_bound - exact.report.yield_lower_bound).abs() < 1e-12);
        }
    }
}
