//! The end-to-end yield analysis pipeline.
//!
//! [`analyze`] runs the method exactly as published: select `M`, build the
//! generalized fault tree `G` in binary logic, order the variables, build
//! the coded ROBDD, convert it to the ROMDD, and evaluate `P(G = 1)` to
//! obtain the yield lower bound `Y_M = 1 − P(G = 1)`.
//!
//! [`analyze_direct`] is an alternative pipeline that skips the coded
//! ROBDD and builds the ROMDD directly with multiple-valued operations; it
//! is used for cross-validation and as an ablation of the paper's design
//! decision that "coded ROBDDs are the most efficient way of handling
//! ROMDDs".

use std::time::{Duration, Instant};

use socy_bdd::BddManager;
use socy_defect::truncation::{select_truncation, truncate_at, Truncation};
use socy_defect::{ComponentProbabilities, DefectDistribution};
use socy_faulttree::Netlist;
use socy_mdd::{MddId, MddManager};
use socy_ordering::{compute_ordering, ComputedOrdering, OrderingSpec};

use crate::encode::GeneralizedFaultTree;
use crate::error::CoreError;

/// Which coded-ROBDD → ROMDD conversion algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConversionAlgorithm {
    /// Top-down memoized conversion (default).
    #[default]
    TopDown,
    /// The paper's bottom-up layer-by-layer procedure.
    Layered,
}

/// Options controlling the yield analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// Absolute error requirement `ε` used to select the truncation `M`.
    pub epsilon: f64,
    /// Variable-ordering specification (multiple-valued ordering + bit-group
    /// ordering).
    pub spec: OrderingSpec,
    /// Conversion algorithm for the coded ROBDD → ROMDD step.
    pub conversion: ConversionAlgorithm,
    /// If set, use this truncation point instead of deriving it from
    /// `epsilon` (the reported error bound is still computed).
    pub fixed_truncation: Option<usize>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-4,
            spec: OrderingSpec::paper_default(),
            conversion: ConversionAlgorithm::TopDown,
            fixed_truncation: None,
        }
    }
}

/// Measurements and results reported by the analysis — the columns of the
/// paper's Table 4 plus a few extras.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// The yield lower bound `Y_M`.
    pub yield_lower_bound: f64,
    /// Guaranteed absolute error `1 − Σ_{k ≤ M} Q'_k`.
    pub error_bound: f64,
    /// Truncation point `M` (number of lethal defects analysed).
    pub truncation: usize,
    /// Number of components `C`.
    pub num_components: usize,
    /// Number of gates in the binary-logic description of `G`.
    pub g_gates: usize,
    /// Number of binary variables of the coded ROBDD.
    pub binary_variables: usize,
    /// Size (reachable nodes) of the final coded ROBDD.
    pub coded_robdd_size: usize,
    /// Peak number of ROBDD nodes allocated while compiling `G`.
    pub robdd_peak: usize,
    /// Size (reachable nodes) of the ROMDD.
    pub romdd_size: usize,
    /// Ordering specification that was used.
    pub spec: OrderingSpec,
    /// Wall-clock time spent building the coded ROBDD.
    pub robdd_time: Duration,
    /// Wall-clock time spent converting to the ROMDD.
    pub conversion_time: Duration,
    /// Total wall-clock time of the analysis.
    pub total_time: Duration,
}

/// Result of [`analyze`]: the report plus the artifacts (ROMDD manager,
/// root, probability vectors) for further inspection.
#[derive(Debug)]
pub struct YieldAnalysis {
    /// Summary measurements (Table 4 columns).
    pub report: YieldReport,
    /// The ROMDD manager holding the diagram of `G`.
    pub mdd: MddManager,
    /// Root of the ROMDD of `G`.
    pub romdd_root: MddId,
    /// Per-level value distributions used for the probability evaluation.
    pub probabilities: Vec<Vec<f64>>,
    /// Multiple-valued variable order (0 = `w`, `l` = `v_l`).
    pub mv_order: Vec<usize>,
    /// Human-readable names of the diagram levels.
    pub mv_names: Vec<String>,
}

fn prepare(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<(GeneralizedFaultTree, ComputedOrdering, Truncation), CoreError> {
    fault_tree.output()?;
    if fault_tree.num_inputs() != components.len() {
        return Err(CoreError::ComponentCountMismatch {
            fault_tree: fault_tree.num_inputs(),
            components: components.len(),
        });
    }
    let truncation = match options.fixed_truncation {
        Some(m) => truncate_at(lethal, m)?,
        None => select_truncation(lethal, options.epsilon)?,
    };
    let g = GeneralizedFaultTree::build(fault_tree, truncation.truncation())?;
    let ordering = compute_ordering(g.netlist(), g.groups(), &options.spec)?;
    Ok((g, ordering, truncation))
}

/// Runs the combinatorial yield method (coded ROBDD → ROMDD pipeline).
///
/// `fault_tree` is the gate-level fault tree `F` over the component failed
/// states (input variable `i` ⇔ component `i`), `components` the lethal-hit
/// probabilities `P_i`, and `lethal` the distribution of the number of
/// **lethal** defects `Q'` (use
/// [`socy_defect::NegativeBinomial::thinned`] or
/// [`socy_defect::lethal::thin_empirical`] to obtain it from a raw defect
/// distribution).
///
/// # Errors
///
/// Returns a [`CoreError`] when the fault tree is malformed, the component
/// count disagrees with the probability model, the truncation point cannot
/// be reached, or the ordering specification is invalid.
pub fn analyze(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<YieldAnalysis, CoreError> {
    let start = Instant::now();
    let (g, ordering, truncation) = prepare(fault_tree, components, lethal, options)?;

    // Coded ROBDD of G.
    let robdd_start = Instant::now();
    let mut bdd = BddManager::new(g.netlist().num_inputs());
    let build = bdd.build_netlist(g.netlist(), &ordering.var_level);
    let robdd_time = robdd_start.elapsed();

    // ROMDD conversion.
    let layout = g.layout(&ordering);
    let conversion_start = Instant::now();
    let mut mdd = MddManager::new(g.mdd_domains(&ordering));
    let romdd_root = match options.conversion {
        ConversionAlgorithm::TopDown => mdd.from_coded_bdd(&bdd, build.root, &layout),
        ConversionAlgorithm::Layered => mdd.from_coded_bdd_layered(&bdd, build.root, &layout),
    };
    let conversion_time = conversion_start.elapsed();

    // Probability evaluation.
    let probabilities = g.probability_vectors(&ordering, &truncation, components);
    let p_g = mdd.probability(romdd_root, &probabilities);
    let yield_lower_bound = 1.0 - p_g;

    let report = YieldReport {
        yield_lower_bound,
        error_bound: truncation.error_bound(),
        truncation: truncation.truncation(),
        num_components: g.num_components(),
        g_gates: g.netlist().num_gates(),
        binary_variables: g.netlist().num_inputs(),
        coded_robdd_size: build.size,
        robdd_peak: build.peak,
        romdd_size: mdd.node_count(romdd_root),
        spec: options.spec,
        robdd_time,
        conversion_time,
        total_time: start.elapsed(),
    };
    let mv_names = g.mv_names(&ordering);
    Ok(YieldAnalysis {
        report,
        mdd,
        romdd_root,
        probabilities,
        mv_order: ordering.mv_order,
        mv_names,
    })
}

/// Runs the yield analysis building the ROMDD *directly* with
/// multiple-valued operations (no coded ROBDD). The report's
/// `coded_robdd_size` and `robdd_peak` fields are zero in this mode; the
/// `romdd_size` and the yield must agree with [`analyze`].
///
/// # Errors
///
/// Same as [`analyze`].
pub fn analyze_direct(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    options: &AnalysisOptions,
) -> Result<YieldAnalysis, CoreError> {
    let start = Instant::now();
    let (g, ordering, truncation) = prepare(fault_tree, components, lethal, options)?;
    let m = g.truncation();

    // Position of each multiple-valued variable in the diagram order.
    let mut position = vec![0usize; ordering.mv_order.len()];
    for (pos, &mv) in ordering.mv_order.iter().enumerate() {
        position[mv] = pos;
    }

    let conversion_start = Instant::now();
    let mut mdd = MddManager::new(g.mdd_domains(&ordering));
    let w_level = position[0];
    // x_i = OR_l ( I_{>=l}(w) AND I_{i}(v_l) )   (domain value i-1 encodes component i)
    let mut x = Vec::with_capacity(g.num_components());
    for component in 0..g.num_components() {
        let mut terms = Vec::with_capacity(m);
        for (l, &pos) in position.iter().enumerate().skip(1).take(m) {
            let ge = mdd.value_at_least(w_level, l);
            let hit = mdd.value_is(pos, component);
            terms.push(mdd.and(ge, hit));
        }
        x.push(mdd.or_many(terms));
    }
    // F over the x_i, evaluated gate by gate with MDD operations.
    let f_root = build_fault_tree_mdd(&mut mdd, fault_tree, &x)?;
    let clamp = mdd.value_is(w_level, m + 1);
    let romdd_root = mdd.or(clamp, f_root);
    let conversion_time = conversion_start.elapsed();

    let probabilities = g.probability_vectors(&ordering, &truncation, components);
    let p_g = mdd.probability(romdd_root, &probabilities);
    let report = YieldReport {
        yield_lower_bound: 1.0 - p_g,
        error_bound: truncation.error_bound(),
        truncation: truncation.truncation(),
        num_components: g.num_components(),
        g_gates: g.netlist().num_gates(),
        binary_variables: g.netlist().num_inputs(),
        coded_robdd_size: 0,
        robdd_peak: 0,
        romdd_size: mdd.node_count(romdd_root),
        spec: options.spec,
        robdd_time: Duration::ZERO,
        conversion_time,
        total_time: start.elapsed(),
    };
    let mv_names = g.mv_names(&ordering);
    Ok(YieldAnalysis {
        report,
        mdd,
        romdd_root,
        probabilities,
        mv_order: ordering.mv_order,
        mv_names,
    })
}

/// Evaluates the fault tree `F` gate by gate over MDD operands (one per
/// component / input variable).
fn build_fault_tree_mdd(
    mdd: &mut MddManager,
    fault_tree: &Netlist,
    inputs: &[MddId],
) -> Result<MddId, CoreError> {
    use socy_faulttree::GateKind;
    let output = fault_tree.output()?;
    let mut results: Vec<MddId> = Vec::with_capacity(fault_tree.len());
    for (id, gate) in fault_tree.iter() {
        let value = match gate.kind {
            GateKind::Input => inputs[fault_tree.var_of(id).expect("input has a variable").index()],
            GateKind::Const(c) => mdd.constant(c),
            GateKind::Not => {
                let a = results[gate.fanin[0].index()];
                mdd.not(a)
            }
            GateKind::And => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.and_many(ops)
            }
            GateKind::Or => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.or_many(ops)
            }
            GateKind::Xor => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                let mut acc = mdd.zero();
                for op in ops {
                    acc = mdd.xor(acc, op);
                }
                acc
            }
            GateKind::AtLeast(k) => {
                let ops: Vec<MddId> = gate.fanin.iter().map(|f| results[f.index()]).collect();
                mdd.at_least(k as usize, &ops)
            }
        };
        results.push(value);
    }
    Ok(results[output.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_defect::{Empirical, NegativeBinomial};
    use socy_ordering::{GroupOrdering, MvOrdering};

    /// F = x1·x2 + x3 (Figure 2).
    fn figure2() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        nl
    }

    fn hand_yield(q: &[f64], p: &[f64], m: usize) -> f64 {
        // Direct enumeration of Y_M = Σ_k Q'_k Y_k for F = x1 x2 + x3.
        let c = p.len();
        let mut total = 0.0;
        for (k, &qk) in q.iter().enumerate().take(m + 1) {
            // enumerate component choices for k defects
            let combos = c.pow(k as u32);
            let mut yk = 0.0;
            for combo in 0..combos {
                let mut rest = combo;
                let mut failed = vec![false; c];
                let mut weight = 1.0;
                for _ in 0..k {
                    let comp = rest % c;
                    rest /= c;
                    failed[comp] = true;
                    weight *= p[comp];
                }
                let f_val = (failed[0] && failed[1]) || failed[2];
                if !f_val {
                    yk += weight;
                }
            }
            total += qk * yk;
        }
        total
    }

    #[test]
    fn pipeline_matches_hand_enumeration() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = Empirical::new(vec![0.5, 0.3, 0.15, 0.05]).unwrap();
        let options = AnalysisOptions { fixed_truncation: Some(2), ..AnalysisOptions::default() };
        let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
        let expect = hand_yield(&[0.5, 0.3, 0.15], &[0.2, 0.3, 0.5], 2);
        assert!(
            (analysis.report.yield_lower_bound - expect).abs() < 1e-12,
            "got {}, expected {expect}",
            analysis.report.yield_lower_bound
        );
        assert_eq!(analysis.report.truncation, 2);
        assert!((analysis.report.error_bound - 0.05).abs() < 1e-12);
        assert!(analysis.report.coded_robdd_size > 0);
        assert!(analysis.report.robdd_peak >= analysis.report.coded_robdd_size);
        assert!(analysis.report.romdd_size > 0);
        assert_eq!(analysis.report.num_components, 3);
        assert_eq!(analysis.mv_order.len(), 3);
        assert_eq!(analysis.mv_names.len(), 3);
        assert_eq!(analysis.probabilities.len(), 3);
    }

    #[test]
    fn direct_mdd_agrees_with_coded_robdd_pipeline() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let options = AnalysisOptions::default();
        let coded = analyze(&f, &comps, &lethal, &options).unwrap();
        let direct = analyze_direct(&f, &comps, &lethal, &options).unwrap();
        assert!((coded.report.yield_lower_bound - direct.report.yield_lower_bound).abs() < 1e-12);
        // Both construct the same canonical ROMDD, so the sizes must agree too.
        assert_eq!(coded.report.romdd_size, direct.report.romdd_size);
    }

    #[test]
    fn layered_conversion_agrees_with_top_down() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.4, 0.4, 0.2]).unwrap();
        let lethal = NegativeBinomial::new(2.0, 0.25).unwrap();
        let top_down = analyze(&f, &comps, &lethal, &AnalysisOptions::default()).unwrap();
        let layered = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions {
                conversion: ConversionAlgorithm::Layered,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(top_down.report.romdd_size, layered.report.romdd_size);
        assert!(
            (top_down.report.yield_lower_bound - layered.report.yield_lower_bound).abs() < 1e-15
        );
    }

    #[test]
    fn all_orderings_give_the_same_yield() {
        // The yield is a property of the function, not of the variable order.
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.25, 0.25, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.5).unwrap();
        let mut yields = Vec::new();
        for mv in MvOrdering::ALL {
            for group in [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst] {
                let spec = OrderingSpec::new(mv, group).unwrap();
                let options = AnalysisOptions { spec, ..AnalysisOptions::default() };
                let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
                yields.push(analysis.report.yield_lower_bound);
            }
        }
        for y in &yields {
            assert!((y - yields[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn error_bound_meets_epsilon() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
        let lethal = NegativeBinomial::new(2.0, 0.25).unwrap();
        for &eps in &[1e-2, 1e-4, 1e-6] {
            let options = AnalysisOptions { epsilon: eps, ..AnalysisOptions::default() };
            let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
            assert!(analysis.report.error_bound <= eps);
        }
        // A tighter epsilon never decreases the truncation point.
        let loose = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions { epsilon: 1e-2, ..AnalysisOptions::default() },
        )
        .unwrap();
        let tight = analyze(
            &f,
            &comps,
            &lethal,
            &AnalysisOptions { epsilon: 1e-6, ..AnalysisOptions::default() },
        )
        .unwrap();
        assert!(tight.report.truncation >= loose.report.truncation);
    }

    #[test]
    fn component_count_mismatch_is_detected() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.5, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let err = analyze(&f, &comps, &lethal, &AnalysisOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::ComponentCountMismatch { .. }));
    }

    #[test]
    fn lethality_below_one_uses_thinned_distribution() {
        // With P_L = 0.5 the lethal distribution is thinner, so the same epsilon
        // needs a smaller truncation point than with P_L = 1.
        let f = figure2();
        let raw = NegativeBinomial::new(2.0, 0.25).unwrap();
        let comps_full = ComponentProbabilities::from_weights(&[1.0, 1.0, 1.0], 1.0).unwrap();
        let comps_half = ComponentProbabilities::from_weights(&[1.0, 1.0, 1.0], 0.5).unwrap();
        let lethal_full = raw.thinned(comps_full.lethality()).unwrap();
        let lethal_half = raw.thinned(comps_half.lethality()).unwrap();
        let a_full = analyze(&f, &comps_full, &lethal_full, &AnalysisOptions::default()).unwrap();
        let a_half = analyze(&f, &comps_half, &lethal_half, &AnalysisOptions::default()).unwrap();
        assert!(a_half.report.truncation < a_full.report.truncation);
        assert!(a_half.report.yield_lower_bound > a_full.report.yield_lower_bound);
    }
}
