//! What-if variants described relative to a base system.
//!
//! A design-space exploration rarely compares unrelated systems: it asks
//! what happens when *one* component's defect probability changes, when a
//! component stops being lethal, or when one redundant module is swapped
//! for a different implementation. [`SystemDelta`] captures exactly that
//! relationship — a named variant expressed as a small change against a
//! base `(fault tree, component model)` pair — so
//! [`Pipeline::sweep_deltas`](crate::Pipeline::sweep_deltas) can keep the
//! base compiled diagram resident and answer the whole family
//! incrementally:
//!
//! * **swap-only** deltas (component-probability overrides, lethality
//!   flips, wholesale component-model replacement) change only the
//!   probability vectors attached to the diagram levels — they are
//!   evaluated on the resident ROMDD with zero kernel work;
//! * **structural** deltas (a fault-tree variant, e.g. one module
//!   subtree swapped via [`swap_subtree`]) recompile only the affected
//!   cofactor: the variant netlist is rebuilt against the retained ROBDD
//!   unique table and op cache, so every gate function shared with the
//!   base is a cache hit and only the changed cone costs apply/ITE work.
//!
//! Every delta can also be [`materialize`](SystemDelta::materialize)d
//! into a standalone `(fault tree, component model)` pair; the delta
//! evaluation path is required (and CI-gated) to reproduce the
//! from-scratch analysis of that materialized variant bit for bit.

use socy_defect::ComponentProbabilities;
use socy_faulttree::{GateKind, Netlist, NodeId, VarId};

use crate::error::CoreError;

/// A named what-if variant of a base system.
///
/// Built with builder-style `with_*` constructors; parts that are not
/// overridden fall through to the base system at evaluation time.
///
/// ```
/// use soc_yield_core::SystemDelta;
///
/// // Component 2 becomes twice as defect-prone; component 0 stops
/// // being lethal at all (the "lethality bit" flipped off).
/// let delta = SystemDelta::named("ip2-hot")
///     .with_component_probability(2, 0.2)
///     .with_component_probability(0, 0.0);
/// assert!(delta.is_swap_only());
/// ```
#[derive(Debug, Clone)]
pub struct SystemDelta {
    name: String,
    component_overrides: Vec<(usize, f64)>,
    components: Option<ComponentProbabilities>,
    fault_tree: Option<Netlist>,
}

impl SystemDelta {
    /// Starts an empty delta (evaluates identically to the base system)
    /// with a human-readable name used in reports and sweep labels.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            component_overrides: Vec::new(),
            components: None,
            fault_tree: None,
        }
    }

    /// The variant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overrides the raw lethal-hit probability `P_i` of one component
    /// (the base model's remaining components keep their probabilities;
    /// the conditionals `P'_i` are re-derived). A probability of `0.0`
    /// expresses the lethality-bit flip: the component exists in the
    /// structure but can no longer be hit by a lethal defect.
    #[must_use]
    pub fn with_component_probability(mut self, component: usize, probability: f64) -> Self {
        self.component_overrides.push((component, probability));
        self
    }

    /// Replaces the component probability model wholesale (per-component
    /// overrides are applied on top of this replacement).
    #[must_use]
    pub fn with_components(mut self, components: ComponentProbabilities) -> Self {
        self.components = Some(components);
        self
    }

    /// Replaces the fault tree by a structural variant. The variant must
    /// have the same number of inputs (components) as the base.
    #[must_use]
    pub fn with_fault_tree(mut self, fault_tree: Netlist) -> Self {
        self.fault_tree = Some(fault_tree);
        self
    }

    /// Convenience for the module-swap form of a structural delta: the
    /// variant's fault tree is the base tree with the subtree rooted at
    /// `target` replaced by `replacement` (a netlist over the same
    /// component inputs as the base). See [`swap_subtree`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDelta`] when `target` is not a gate of
    /// `base` or the replacement's inputs disagree with the base.
    pub fn with_subtree_swap(
        self,
        base: &Netlist,
        target: NodeId,
        replacement: &Netlist,
    ) -> Result<Self, CoreError> {
        Ok(self.with_fault_tree(swap_subtree(base, target, replacement)?))
    }

    /// `true` when the delta changes only probabilities, never structure —
    /// evaluating it against a compiled base costs one linear-time
    /// probability traversal and no kernel work.
    pub fn is_swap_only(&self) -> bool {
        self.fault_tree.is_none()
    }

    /// The structural part of the delta, if any.
    pub fn fault_tree(&self) -> Option<&Netlist> {
        self.fault_tree.as_ref()
    }

    /// Resolves the delta's component model against the base model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDelta`] when an override names a
    /// component the model does not have, and [`CoreError::Defect`] when
    /// the resulting probabilities are invalid (e.g. every component
    /// overridden to zero).
    pub fn materialize_components(
        &self,
        base: &ComponentProbabilities,
    ) -> Result<ComponentProbabilities, CoreError> {
        let start = self.components.as_ref().unwrap_or(base);
        if self.component_overrides.is_empty() {
            return Ok(start.clone());
        }
        let mut raw = start.raw_slice().to_vec();
        for &(component, probability) in &self.component_overrides {
            if component >= raw.len() {
                return Err(CoreError::InvalidDelta(format!(
                    "delta `{}` overrides component {component}, but the model has only {} components",
                    self.name,
                    raw.len()
                )));
            }
            raw[component] = probability;
        }
        Ok(ComponentProbabilities::new(raw)?)
    }

    /// Materializes the variant as a standalone `(fault tree, component
    /// model)` pair — the system a from-scratch analysis of this what-if
    /// point would compile. The delta evaluation path is required to
    /// reproduce that analysis bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDelta`] when the variant's fault tree
    /// and the component model disagree on the number of components, plus
    /// the errors of [`SystemDelta::materialize_components`].
    pub fn materialize(
        &self,
        base_fault_tree: &Netlist,
        base_components: &ComponentProbabilities,
    ) -> Result<(Netlist, ComponentProbabilities), CoreError> {
        let components = self.materialize_components(base_components)?;
        let fault_tree = self.fault_tree.clone().unwrap_or_else(|| base_fault_tree.clone());
        if fault_tree.num_inputs() != components.len() {
            return Err(CoreError::InvalidDelta(format!(
                "delta `{}`: variant fault tree has {} components but the model has {}",
                self.name,
                fault_tree.num_inputs(),
                components.len()
            )));
        }
        Ok((fault_tree, components))
    }
}

/// Builds the variant netlist obtained from `base` by replacing the
/// subtree rooted at the gate `target` with `replacement`, a netlist over
/// the same primary inputs as `base` (input `i` of the replacement is
/// substituted by input `i` of the base). The result keeps the base's
/// input set and order — only the gate structure changes — and contains
/// exactly the gates reachable from the (new) output.
///
/// # Errors
///
/// Returns [`CoreError::InvalidDelta`] when `target` is not a gate of
/// `base`, or when `replacement` has no output or a different input
/// count, and [`CoreError::FaultTree`] when `base` has no output.
pub fn swap_subtree(
    base: &Netlist,
    target: NodeId,
    replacement: &Netlist,
) -> Result<Netlist, CoreError> {
    let output = base.output()?;
    replacement.output().map_err(|_| {
        CoreError::InvalidDelta("subtree replacement netlist has no output".to_string())
    })?;
    if replacement.num_inputs() != base.num_inputs() {
        return Err(CoreError::InvalidDelta(format!(
            "subtree replacement has {} inputs but the base fault tree has {}",
            replacement.num_inputs(),
            base.num_inputs()
        )));
    }
    if target.index() >= base.len() || matches!(base.gate(target).kind, GateKind::Input) {
        return Err(CoreError::InvalidDelta(
            "subtree swap target must be a gate of the base fault tree".to_string(),
        ));
    }

    // Gates still needed in the variant: the output cone, with the swap
    // target contributing no fan-in (its old cone is only kept if some
    // gate outside the swapped subtree still references it).
    let mut needed = vec![false; base.len()];
    let mut stack = vec![output];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut needed[id.index()], true) || id == target {
            continue;
        }
        stack.extend(base.gate(id).fanin.iter().copied());
    }

    let mut out = Netlist::new();
    // Recreate every primary input in base variable order, so component
    // `i` remains input variable `i` of the variant.
    let inputs: Vec<NodeId> =
        (0..base.num_inputs()).map(|i| out.input(base.var_name(VarId::new(i)))).collect();
    let mut mapped: Vec<Option<NodeId>> = vec![None; base.len()];
    for (i, &input) in inputs.iter().enumerate() {
        mapped[base.node_of(VarId::new(i)).index()] = Some(input);
    }
    for (id, gate) in base.iter() {
        if !needed[id.index()] || mapped[id.index()].is_some() {
            continue;
        }
        let new_id = if id == target {
            out.import(replacement, &inputs)
        } else {
            let fanin: Vec<NodeId> = gate
                .fanin
                .iter()
                .map(|f| mapped[f.index()].expect("fan-ins precede their gate"))
                .collect();
            match gate.kind {
                GateKind::Input => unreachable!("inputs are pre-mapped"),
                GateKind::Const(c) => out.constant(c),
                GateKind::Not => out.not(fanin[0]),
                GateKind::And => out.and(fanin),
                GateKind::Or => out.or(fanin),
                GateKind::Xor => out.xor(fanin),
                GateKind::AtLeast(k) => out.at_least(k as usize, fanin),
            }
        };
        mapped[id.index()] = Some(new_id);
    }
    let new_output = mapped[output.index()].expect("output is needed by construction");
    out.set_output(new_output);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// F = (x0 AND x1) OR x2.
    fn base() -> Netlist {
        let mut nl = Netlist::new();
        let x0 = nl.input("x0");
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let a = nl.and([x0, x1]);
        let f = nl.or([a, x2]);
        nl.set_output(f);
        nl
    }

    /// The 2-of-3 voter over the same three inputs.
    fn voter() -> Netlist {
        let mut nl = Netlist::new();
        let x0 = nl.input("x0");
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let v = nl.at_least(2, [x0, x1, x2]);
        nl.set_output(v);
        nl
    }

    fn assignments(c: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << c).map(move |bits| (0..c).map(|i| (bits >> i) & 1 == 1).collect())
    }

    #[test]
    fn swap_of_the_root_replaces_the_whole_function() {
        let base = base();
        let target = base.output().unwrap();
        let swapped = swap_subtree(&base, target, &voter()).unwrap();
        assert_eq!(swapped.num_inputs(), 3);
        for a in assignments(3) {
            assert_eq!(swapped.eval_output(&a), voter().eval_output(&a), "{a:?}");
        }
    }

    #[test]
    fn swap_of_an_inner_module_keeps_the_surrounding_logic() {
        // Replace the (x0 AND x1) module by the 2-of-3 voter: the OR with
        // x2 above it must survive.
        let base = base();
        let (and_gate, _) = base
            .iter()
            .find(|(_, g)| matches!(g.kind, GateKind::And))
            .expect("base has an AND gate");
        let swapped = swap_subtree(&base, and_gate, &voter()).unwrap();
        for a in assignments(3) {
            let votes = a.iter().filter(|&&b| b).count();
            let expect = votes >= 2 || a[2];
            assert_eq!(swapped.eval_output(&a), expect, "{a:?}");
        }
    }

    #[test]
    fn swap_rejects_malformed_requests() {
        let base = base();
        let target = base.output().unwrap();
        // Wrong input count.
        let mut small = Netlist::new();
        let a = small.input("a");
        small.set_output(a);
        assert!(matches!(swap_subtree(&base, target, &small), Err(CoreError::InvalidDelta(_))));
        // No output.
        let mut headless = Netlist::new();
        headless.input("a");
        headless.input("b");
        headless.input("c");
        assert!(matches!(swap_subtree(&base, target, &headless), Err(CoreError::InvalidDelta(_))));
        // Target is an input.
        let input0 = base.node_of(VarId::new(0));
        assert!(matches!(swap_subtree(&base, input0, &voter()), Err(CoreError::InvalidDelta(_))));
    }

    #[test]
    fn component_overrides_rederive_the_conditionals() {
        let base_model = ComponentProbabilities::new(vec![0.1, 0.2, 0.2]).unwrap();
        let delta = SystemDelta::named("hot").with_component_probability(0, 0.3);
        let variant = delta.materialize_components(&base_model).unwrap();
        assert!((variant.lethality() - 0.7).abs() < 1e-12);
        assert!((variant.conditional(0) - 0.3 / 0.7).abs() < 1e-12);
        // Lethality flip: component 1 can no longer be hit.
        let flipped = SystemDelta::named("off")
            .with_component_probability(1, 0.0)
            .materialize_components(&base_model)
            .unwrap();
        assert_eq!(flipped.conditional(1), 0.0);
        assert!((flipped.lethality() - 0.3).abs() < 1e-12);
        // Out-of-range component.
        let bad = SystemDelta::named("bad").with_component_probability(7, 0.1);
        assert!(matches!(bad.materialize_components(&base_model), Err(CoreError::InvalidDelta(_))));
    }

    #[test]
    fn materialize_checks_the_component_count() {
        let model = ComponentProbabilities::new(vec![0.5, 0.5]).unwrap();
        let delta = SystemDelta::named("structural").with_fault_tree(voter());
        assert!(matches!(delta.materialize(&voter(), &model), Err(CoreError::InvalidDelta(_))));
        let empty = SystemDelta::named("noop");
        let (ft, comps) = empty
            .materialize(&base(), &ComponentProbabilities::new(vec![0.2; 3]).unwrap())
            .unwrap();
        assert_eq!(ft.num_inputs(), 3);
        assert_eq!(comps.len(), 3);
        assert!(empty.is_swap_only());
    }
}
