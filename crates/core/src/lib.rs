//! The combinatorial method for the evaluation of yield of fault-tolerant
//! systems-on-chip (DSN 2003).
//!
//! Given
//!
//! * a gate-level **fault tree** `F(x_1, …, x_C)` over the component failed
//!   states (`F = 1` ⇔ the system is not functioning),
//! * per-component lethal-defect probabilities `P_i`
//!   ([`socy_defect::ComponentProbabilities`]), and
//! * a distribution of the number of **lethal** manufacturing defects `Q'_k`
//!   (any [`socy_defect::DefectDistribution`]),
//!
//! the method computes a lower bound `Y_M` on the yield with a guaranteed
//! absolute error `≤ ε`:
//!
//! 1. select the truncation `M = min{m : Σ_{k≤m} Q'_k ≥ 1-ε}`;
//! 2. build the **generalized fault tree** `G(w, v_1, …, v_M)` in binary
//!    logic (module [`encode`]);
//! 3. order its variables with one of the paper's heuristics
//!    ([`socy_ordering`]);
//! 4. compile the **coded ROBDD** of `G` ([`socy_bdd`]);
//! 5. convert it into the **ROMDD** ([`socy_mdd`]);
//! 6. evaluate `P(G = 1)` on the ROMDD and return `Y_M = 1 − P(G = 1)`.
//!
//! For design-space studies the [`Pipeline`] type runs the same method
//! with artifact reuse: steps 1–5 are performed once per ordering
//! configuration (at the largest truncation the study needs) and
//! [`Pipeline::sweep`] then answers every `(distribution, ε)` point with
//! a single linear-time probability evaluation on the compiled ROMDD.
//!
//! The crate also contains an exact (exponential) baseline for small
//! systems (module [`exact`]), closed-form yields for elementary redundancy
//! structures (module [`structures`]), and a direct-ROMDD construction used
//! for cross-checking and ablations.
//!
//! # Example
//!
//! ```
//! use socy_faulttree::Netlist;
//! use socy_defect::{ComponentProbabilities, NegativeBinomial};
//! use soc_yield_core::{analyze, AnalysisOptions};
//!
//! // A 1-out-of-2 system: it fails only when both components fail.
//! let mut f = Netlist::new();
//! let x1 = f.input("x1");
//! let x2 = f.input("x2");
//! let both = f.and([x1, x2]);
//! f.set_output(both);
//!
//! let comps = ComponentProbabilities::new(vec![0.5, 0.5])?;
//! let lethal = NegativeBinomial::new(1.0, 0.25)?;
//! let analysis = analyze(&f, &comps, &lethal, &AnalysisOptions::default())?;
//! assert!(analysis.report.yield_lower_bound > 0.5);
//! assert!(analysis.report.error_bound <= 1e-4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod degrade;
pub mod delta;
pub mod encode;
pub mod error;
pub mod exact;
pub mod reliability;
pub mod structures;

pub use analysis::{
    analyze, analyze_direct, AnalysisOptions, ConversionAlgorithm, Pipeline, SweepPoint,
    YieldAnalysis, YieldReport,
};
pub use degrade::{DegradeLadder, DegradeStep, Fidelity};
pub use delta::{swap_subtree, SystemDelta};
pub use encode::GeneralizedFaultTree;
pub use error::CoreError;
pub use reliability::{analyze_reliability, ReliabilityReport};
pub use socy_dd::{CancelToken, CompileOptions, DdError, DdStats};
