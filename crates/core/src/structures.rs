//! Closed-form yields for elementary redundancy structures under the
//! lethal-defect model.
//!
//! These formulas serve as independent oracles for the ROMDD pipeline (no
//! decision diagrams involved) and as the "ad-hoc evaluation" alternative
//! the paper mentions for regular structures.
//!
//! All formulas condition on the number of lethal defects `k` and use the
//! fact that, given `k`, the components hit are i.i.d. draws from the
//! conditional distribution `P'`.

use socy_defect::{ComponentProbabilities, Truncation};

use crate::error::CoreError;

/// Yield of a *series* system (the system functions only when **no**
/// component is failed).
///
/// Under the lethal-defect model every lethal defect fails some component,
/// so the truncated yield is simply `Q'_0` (the probability of zero lethal
/// defects within the truncation window).
pub fn series_yield(truncation: &Truncation) -> f64 {
    truncation.masses().first().copied().unwrap_or(0.0)
}

/// Yield of a *parallel* system over all `C` components (the system
/// functions while **at least one** component is unfailed), truncated at
/// `M` lethal defects.
///
/// `P(all C components hit | k defects)` is computed by inclusion–exclusion
/// over the set of missed components, which costs `O(2^C)`; intended for
/// small component counts (used as a test oracle).
///
/// # Errors
///
/// Returns [`CoreError::EmptySystem`] when the component model has more
/// than 24 components.
pub fn parallel_yield(
    components: &ComponentProbabilities,
    truncation: &Truncation,
) -> Result<f64, CoreError> {
    let c = components.len();
    if c > 24 {
        return Err(CoreError::EmptySystem);
    }
    let mut total = 0.0;
    for (k, q) in truncation.masses().iter().enumerate() {
        // P(every component hit) = Σ_{U ⊆ comps} (-1)^{|U|} (1 - P'(U))^k,
        // where U ranges over sets of components required to be missed.
        let mut all_hit = 0.0;
        for u in 0..(1usize << c) {
            let missed: f64 =
                (0..c).filter(|i| u & (1 << i) != 0).map(|i| components.conditional(i)).sum();
            let sign = if (u.count_ones() % 2) == 0 { 1.0 } else { -1.0 };
            all_hit += sign * (1.0 - missed).powi(k as i32);
        }
        total += q * (1.0 - all_hit.clamp(0.0, 1.0));
    }
    Ok(total)
}

/// Yield of a *k-out-of-n* system with **equally likely** components (the
/// system functions while at least `required` of the `n` components are
/// unfailed), truncated at `M` lethal defects.
///
/// The number of *distinct* components hit by `m` uniform draws follows the
/// classical occupancy distribution
/// `P(j distinct) = C(n, j) Σ_t (-1)^t C(j, t) ((j - t)/n)^m`.
pub fn k_of_n_yield_iid(n: usize, required: usize, truncation: &Truncation) -> f64 {
    assert!(n >= 1 && required <= n, "invalid k-of-n parameters");
    let max_failed = n - required; // the system survives while at most this many components failed
    let mut total = 0.0;
    for (m, q) in truncation.masses().iter().enumerate() {
        let mut survive = 0.0;
        for j in 0..=max_failed.min(m) {
            survive += occupancy_probability(n, j, m);
        }
        total += q * survive;
    }
    total
}

/// Probability that `m` uniform draws over `n` cells occupy exactly `j`
/// distinct cells.
fn occupancy_probability(n: usize, j: usize, m: usize) -> f64 {
    if j > m && !(j == 0 && m == 0) {
        return if j == 0 && m == 0 { 1.0 } else { 0.0 };
    }
    if j == 0 {
        return if m == 0 { 1.0 } else { 0.0 };
    }
    let ln_choose_nj = socy_defect::math::ln_binomial(n, j);
    let mut inner = 0.0f64;
    for t in 0..=j {
        let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
        let frac = (j - t) as f64 / n as f64;
        inner += sign * socy_defect::math::ln_binomial(j, t).exp() * frac.powi(m as i32);
    }
    (ln_choose_nj.exp()) * inner.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisOptions};
    use socy_defect::truncation::truncate_at;
    use socy_defect::{DefectDistribution, NegativeBinomial};
    use socy_faulttree::Netlist;

    fn lethal() -> NegativeBinomial {
        NegativeBinomial::new(1.0, 0.25).unwrap()
    }

    #[test]
    fn series_yield_is_q0() {
        let trunc = truncate_at(&lethal(), 6).unwrap();
        assert!((series_yield(&trunc) - lethal().pmf(0)).abs() < 1e-15);
    }

    #[test]
    fn series_matches_romdd_pipeline() {
        // Series system of 4 components: F = OR of all failures.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..4).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.or(inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.25; 4]).unwrap();
        let analysis = analyze(&nl, &comps, &lethal(), &AnalysisOptions::default()).unwrap();
        let trunc = truncate_at(&lethal(), analysis.report.truncation).unwrap();
        assert!((analysis.report.yield_lower_bound - series_yield(&trunc)).abs() < 1e-10);
    }

    #[test]
    fn parallel_matches_romdd_pipeline() {
        // Parallel system of 3 components: F = AND of all failures.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..3).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.and(inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.5, 0.3, 0.2]).unwrap();
        let analysis = analyze(&nl, &comps, &lethal(), &AnalysisOptions::default()).unwrap();
        let trunc = truncate_at(&lethal(), analysis.report.truncation).unwrap();
        let closed = parallel_yield(&comps, &trunc).unwrap();
        assert!(
            (analysis.report.yield_lower_bound - closed).abs() < 1e-10,
            "pipeline {} vs closed form {closed}",
            analysis.report.yield_lower_bound
        );
    }

    #[test]
    fn k_of_n_matches_romdd_pipeline() {
        // 3-of-5 system with equal probabilities: F = at_least(3 failures of 5).
        let n = 5;
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..n).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.at_least(3, inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![1.0 / n as f64; n]).unwrap();
        let analysis = analyze(&nl, &comps, &lethal(), &AnalysisOptions::default()).unwrap();
        let trunc = truncate_at(&lethal(), analysis.report.truncation).unwrap();
        // System functions while at least 3 components are unfailed (at most 2 failed).
        let closed = k_of_n_yield_iid(n, 3, &trunc);
        assert!(
            (analysis.report.yield_lower_bound - closed).abs() < 1e-10,
            "pipeline {} vs closed form {closed}",
            analysis.report.yield_lower_bound
        );
    }

    #[test]
    fn series_matches_exact_baseline() {
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..4).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.or(inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let trunc = truncate_at(&lethal(), 8).unwrap();
        let exact = crate::exact::exact_yield(&nl, &comps, &trunc).unwrap();
        assert!((series_yield(&trunc) - exact).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_exact_baseline() {
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..3).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.and(inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.5, 0.3, 0.2]).unwrap();
        let trunc = truncate_at(&lethal(), 8).unwrap();
        let exact = crate::exact::exact_yield(&nl, &comps, &trunc).unwrap();
        let closed = parallel_yield(&comps, &trunc).unwrap();
        assert!((closed - exact).abs() < 1e-12, "closed form {closed} vs exact {exact}");
    }

    #[test]
    fn k_of_n_matches_exact_baseline() {
        // 2-of-4 and 3-of-5 systems with equally likely components.
        for &(n, required) in &[(4usize, 2usize), (5, 3)] {
            let mut nl = Netlist::new();
            let inputs: Vec<_> = (0..n).map(|i| nl.input(format!("x{i}"))).collect();
            // The system fails when more than n - required components fail.
            let f = nl.at_least(n - required + 1, inputs);
            nl.set_output(f);
            let comps = ComponentProbabilities::new(vec![1.0 / n as f64; n]).unwrap();
            let trunc = truncate_at(&lethal(), 7).unwrap();
            let exact = crate::exact::exact_yield(&nl, &comps, &trunc).unwrap();
            let closed = k_of_n_yield_iid(n, required, &trunc);
            assert!(
                (closed - exact).abs() < 1e-12,
                "{required}-of-{n}: closed form {closed} vs exact {exact}"
            );
        }
    }

    #[test]
    fn parallel_rejects_huge_systems() {
        let comps = ComponentProbabilities::new(vec![1.0 / 30.0; 30]).unwrap();
        let trunc = truncate_at(&lethal(), 3).unwrap();
        assert!(parallel_yield(&comps, &trunc).is_err());
    }

    #[test]
    fn occupancy_distribution_sums_to_one() {
        for &(n, m) in &[(3usize, 4usize), (5, 2), (6, 6)] {
            let total: f64 = (0..=n.min(m)).map(|j| occupancy_probability(n, j, m)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} m={m} total={total}");
        }
        assert_eq!(occupancy_probability(4, 0, 0), 1.0);
        assert_eq!(occupancy_probability(4, 0, 3), 0.0);
    }
}
