//! Operational-reliability evaluation accounting for manufacturing defects
//! — the extension the paper announces as future work in its conclusions.
//!
//! After manufacturing (and the implicit test screening captured by the
//! yield model), the surviving chips are put in operation and components
//! may additionally fail *in the field*. Assuming the field failures of
//! the components are independent of each other and of the manufacturing
//! defects, the probability that the system is functioning at operational
//! time `t` — conditioned on nothing (i.e. across the whole production) —
//! is
//!
//! ```text
//! R_M(t) = P( F( x_1 ∨ b_1, …, x_C ∨ b_C ) = 0, ≤ M lethal defects )
//! ```
//!
//! where `x_i` is the manufacturing-defect failed state of component `i`
//! (exactly as in the yield model) and `b_i` is an independent Bernoulli
//! variable with `P(b_i = 1) = u_i(t)`, the field unreliability of
//! component `i` at time `t`.
//!
//! The same decision-diagram machinery evaluates this quantity: the
//! generalized fault tree is extended with one extra two-valued variable
//! per component, ordered after the defect variables, and the probability
//! is read off the ROMDD exactly as for the yield. Dividing by the yield
//! gives the conditional reliability of the chips that were functioning
//! when shipped.

use socy_bdd::BddManager;
use socy_defect::truncation::{select_truncation, truncate_at};
use socy_defect::{ComponentProbabilities, DefectDistribution};
use socy_faulttree::Netlist;
use socy_mdd::coded::MvVarLayout;
use socy_mdd::{CodedLayout, MddManager};
use socy_ordering::compute_ordering;

use crate::analysis::AnalysisOptions;
use crate::encode::GeneralizedFaultTree;
use crate::error::CoreError;

/// Result of the combined yield / operational-reliability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Lower bound on the yield `Y_M` (probability that a produced chip
    /// works at `t = 0`).
    pub yield_lower_bound: f64,
    /// Lower bound on `R_M(t)`: the probability that a produced chip works
    /// at the evaluated operational time (manufacturing defects *and*
    /// field failures considered).
    pub reliability_lower_bound: f64,
    /// `R_M(t) / Y_M`: reliability conditioned on the chip having been
    /// functional when shipped.
    pub conditional_reliability: f64,
    /// Truncation point `M`.
    pub truncation: usize,
    /// Guaranteed absolute error bound (applies to both bounds).
    pub error_bound: f64,
    /// Size of the extended ROMDD.
    pub romdd_size: usize,
}

/// Evaluates yield and operational reliability for `fault_tree` under the
/// lethal-defect model `(lethal, components)` and per-component field
/// unreliabilities `field_unreliability[i] = P(component i fails in the
/// field by the evaluated time)`.
///
/// # Errors
///
/// Returns a [`CoreError`] under the same conditions as
/// [`crate::analyze`], plus [`CoreError::ComponentCountMismatch`] when
/// `field_unreliability` does not have one entry per component, and
/// [`CoreError::Defect`] when an unreliability is outside `[0, 1]`.
pub fn analyze_reliability(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    lethal: &dyn DefectDistribution,
    field_unreliability: &[f64],
    options: &AnalysisOptions,
) -> Result<ReliabilityReport, CoreError> {
    fault_tree.output()?;
    let c = fault_tree.num_inputs();
    if c != components.len() || c != field_unreliability.len() {
        return Err(CoreError::ComponentCountMismatch {
            fault_tree: c,
            components: components.len().min(field_unreliability.len()),
        });
    }
    for &u in field_unreliability {
        if !(u.is_finite() && (0.0..=1.0).contains(&u)) {
            return Err(CoreError::Defect(socy_defect::DefectError::InvalidProbability {
                name: "field_unreliability",
                value: u,
            }));
        }
    }
    let truncation = match options.fixed_truncation {
        Some(m) => truncate_at(lethal, m)?,
        None => select_truncation(lethal, options.epsilon)?,
    };

    // Extended fault tree: F'(x_1.., b_1..) = F(x_1 ∨ b_1, …, x_C ∨ b_C), where the
    // b_i are fresh inputs appended after the original components.
    let mut extended = Netlist::new();
    let defect_inputs: Vec<_> = (0..c).map(|i| extended.input(format!("x{i}"))).collect();
    let field_inputs: Vec<_> = (0..c).map(|i| extended.input(format!("b{i}"))).collect();
    let substitution: Vec<_> =
        defect_inputs.iter().zip(field_inputs.iter()).map(|(&x, &b)| extended.or([x, b])).collect();
    let root = extended.import(fault_tree, &substitution);
    extended.set_output(root);

    // The yield part reuses the ordinary pipeline on the *original* fault tree to
    // obtain orderings for the defect variables; the field variables are then
    // appended below them in the diagram order (they are the "most local" ones).
    let g = GeneralizedFaultTree::build(fault_tree, truncation.truncation())?;
    let ordering = compute_ordering(g.netlist(), g.groups(), &options.spec)?;

    // Build G'(w, v_1..v_M, b_1..b_C) in binary logic: reuse G's netlist structure by
    // rebuilding it against the extended fault tree, with the b_i appended as inputs.
    let m = truncation.truncation();
    let g_ext = build_extended_g(fault_tree, m)?;

    // Levels: the binary variables of w/v keep the levels computed by the ordering;
    // the b_i bits are appended afterwards in component order.
    let base_bits = g.netlist().num_inputs();
    let mut var_level = vec![0usize; g_ext.netlist.num_inputs()];
    var_level[..base_bits].copy_from_slice(&ordering.var_level);
    for (offset, level_slot) in var_level[base_bits..].iter_mut().enumerate() {
        *level_slot = base_bits + offset;
    }

    // Coded ROBDD of G'.
    let mut bdd = BddManager::new(g_ext.netlist.num_inputs());
    let build = bdd.build_netlist(&g_ext.netlist, &var_level);

    // Layout: the yield layout plus one boolean variable per component.
    let mut vars = g.layout(&ordering).vars;
    for i in 0..c {
        vars.push(MvVarLayout {
            domain: 2,
            bit_levels: vec![base_bits + i],
            codes: vec![vec![false], vec![true]],
        });
    }
    let layout = CodedLayout::new(vars).expect("extended layout is structurally valid");

    let mut mdd = MddManager::new(layout.domains());
    let romdd_root = mdd.from_coded_bdd(&bdd, build.root, &layout);

    // Probability vectors: defect variables as for the yield, then the field
    // unreliabilities.
    let mut probabilities = g.probability_vectors(&ordering, &truncation, components);
    for &u in field_unreliability {
        probabilities.push(vec![1.0 - u, u]);
    }
    let p_fail_with_field = mdd.probability(romdd_root, &probabilities);
    let reliability_lower_bound = 1.0 - p_fail_with_field;

    // Yield: same diagram with the field failures switched off.
    let mut yield_probabilities = probabilities.clone();
    for slot in yield_probabilities.iter_mut().skip(g.groups().num_vars()) {
        *slot = vec![1.0, 0.0];
    }
    let yield_lower_bound = 1.0 - mdd.probability(romdd_root, &yield_probabilities);

    Ok(ReliabilityReport {
        yield_lower_bound,
        reliability_lower_bound,
        conditional_reliability: if yield_lower_bound > 0.0 {
            reliability_lower_bound / yield_lower_bound
        } else {
            0.0
        },
        truncation: truncation.truncation(),
        error_bound: truncation.error_bound(),
        romdd_size: mdd.node_count(romdd_root),
    })
}

/// The extended generalized fault tree `G'` over the binary defect
/// variables of `G` plus one field-failure input per component.
struct ExtendedG {
    netlist: Netlist,
}

fn build_extended_g(fault_tree: &Netlist, truncation: usize) -> Result<ExtendedG, CoreError> {
    let base = GeneralizedFaultTree::build(fault_tree, truncation)?;
    let c = fault_tree.num_inputs();
    // Start from the binary netlist of G (for its defect-variable inputs), append one
    // field-failure input per component, rebuild the per-component "hit by a defect"
    // drivers, and form G' = I_{M+1}(w) ∨ F(x_i ∨ b_i). The rebuilt drivers duplicate
    // gates already present in G — that only adds netlist nodes, not logic errors, and
    // the ROBDD construction collapses the duplication anyway.
    let mut netlist = base.netlist().clone();
    let b_inputs: Vec<_> = (0..c).map(|i| netlist.input(format!("b{i}"))).collect();
    let x_drivers = rebuild_x_drivers(&mut netlist, &base, c, truncation);
    let substitution: Vec<_> =
        x_drivers.iter().zip(b_inputs.iter()).map(|(&xi, &bi)| netlist.or([xi, bi])).collect();
    let f_prime = netlist.import(fault_tree, &substitution);
    // I_{M+1}(w): rebuild the clamp minterm over the w bits.
    let clamp = rebuild_clamp(&mut netlist, &base, truncation);
    let new_output = netlist.or([clamp, f_prime]);
    netlist.set_output(new_output);
    Ok(ExtendedG { netlist })
}

/// Rebuilds the per-component "hit by one of the first M defects" drivers
/// inside `netlist` (which already contains the defect-variable inputs of
/// `base`).
fn rebuild_x_drivers(
    netlist: &mut Netlist,
    base: &GeneralizedFaultTree,
    c: usize,
    truncation: usize,
) -> Vec<socy_faulttree::NodeId> {
    let groups = base.groups();
    let w_bits: Vec<_> = groups.w.iter().map(|v| netlist.node_of(*v)).collect();
    let w_width = w_bits.len();
    let v_bits: Vec<Vec<_>> =
        groups.v.iter().map(|g| g.iter().map(|v| netlist.node_of(*v)).collect()).collect();
    let v_width = v_bits.first().map(|g: &Vec<_>| g.len()).unwrap_or(0);
    let w_neg: Vec<_> = w_bits.iter().map(|&b| netlist.not(b)).collect();
    let v_neg: Vec<Vec<_>> =
        v_bits.iter().map(|bits| bits.iter().map(|&b| netlist.not(b)).collect()).collect();
    let minterm = |netlist: &mut Netlist,
                   bits: &[socy_faulttree::NodeId],
                   negs: &[socy_faulttree::NodeId],
                   width: usize,
                   value: usize| {
        let literals: Vec<_> = (0..width)
            .map(|j| if (value >> (width - 1 - j)) & 1 == 1 { bits[j] } else { negs[j] })
            .collect();
        netlist.and(literals)
    };
    let m = truncation;
    let mut z_ge = vec![minterm(netlist, &w_bits, &w_neg, w_width, m + 1); m + 2];
    for k in (1..=m).rev() {
        let mk = minterm(netlist, &w_bits, &w_neg, w_width, k);
        z_ge[k] = netlist.or([z_ge[k + 1], mk]);
    }
    (0..c)
        .map(|component| {
            let terms: Vec<_> = (1..=m)
                .map(|l| {
                    let hit = minterm(netlist, &v_bits[l - 1], &v_neg[l - 1], v_width, component);
                    netlist.and([z_ge[l], hit])
                })
                .collect();
            netlist.or(terms)
        })
        .collect()
}

/// Rebuilds the `w = M + 1` clamp minterm inside `netlist`.
fn rebuild_clamp(
    netlist: &mut Netlist,
    base: &GeneralizedFaultTree,
    truncation: usize,
) -> socy_faulttree::NodeId {
    let w_bits: Vec<_> = base.groups().w.iter().map(|v| netlist.node_of(*v)).collect();
    let width = w_bits.len();
    let value = truncation + 1;
    let literals: Vec<_> = (0..width)
        .map(|j| {
            let bit = w_bits[j];
            if (value >> (width - 1 - j)) & 1 == 1 {
                bit
            } else {
                netlist.not(bit)
            }
        })
        .collect();
    netlist.and(literals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use socy_defect::{Empirical, NegativeBinomial};

    fn figure2() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn zero_field_unreliability_recovers_the_yield() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let plain = analyze(&f, &comps, &lethal, &options).unwrap();
        let report = analyze_reliability(&f, &comps, &lethal, &[0.0, 0.0, 0.0], &options).unwrap();
        assert!((report.reliability_lower_bound - plain.report.yield_lower_bound).abs() < 1e-10);
        assert!((report.yield_lower_bound - plain.report.yield_lower_bound).abs() < 1e-10);
        assert!((report.conditional_reliability - 1.0).abs() < 1e-10);
        assert_eq!(report.truncation, plain.report.truncation);
    }

    #[test]
    fn reliability_matches_hand_enumeration() {
        // Point-mass defect model (exactly one lethal defect) keeps the hand
        // computation small: the chip fails iff the defect hits component 3, or it
        // hits {1 or 2} and the *other* of {1,2} fails in the field, or component 3
        // fails in the field, or both 1 and 2 fail in the field… — easiest to just
        // enumerate defect target × field-failure patterns.
        let f = figure2();
        let p = [0.2, 0.3, 0.5];
        let u = [0.1, 0.2, 0.05];
        let comps = ComponentProbabilities::new(p.to_vec()).unwrap();
        let lethal = Empirical::point_mass(1);
        let options = AnalysisOptions { fixed_truncation: Some(1), ..AnalysisOptions::default() };
        let report = analyze_reliability(&f, &comps, &lethal, &u, &options).unwrap();
        let mut expect = 0.0;
        for target in 0..3 {
            for pattern in 0..8u32 {
                let mut failed = [false; 3];
                failed[target] = true;
                let mut weight = p[target];
                for i in 0..3 {
                    let field = (pattern >> i) & 1 == 1;
                    weight *= if field { u[i] } else { 1.0 - u[i] };
                    failed[i] |= field;
                }
                if !((failed[0] && failed[1]) || failed[2]) {
                    expect += weight;
                }
            }
        }
        assert!(
            (report.reliability_lower_bound - expect).abs() < 1e-10,
            "got {}, expected {expect}",
            report.reliability_lower_bound
        );
        assert!(report.reliability_lower_bound <= report.yield_lower_bound + 1e-12);
        assert!(report.conditional_reliability <= 1.0 + 1e-12);
        assert!(report.romdd_size > 0);
    }

    #[test]
    fn reliability_decreases_with_field_unreliability() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let low = analyze_reliability(&f, &comps, &lethal, &[0.01; 3], &options).unwrap();
        let high = analyze_reliability(&f, &comps, &lethal, &[0.2; 3], &options).unwrap();
        assert!(high.reliability_lower_bound < low.reliability_lower_bound);
        assert!((high.yield_lower_bound - low.yield_lower_bound).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.5, 0.3, 0.2]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = AnalysisOptions::default();
        assert!(matches!(
            analyze_reliability(&f, &comps, &lethal, &[0.1, 0.1], &options),
            Err(CoreError::ComponentCountMismatch { .. })
        ));
        assert!(matches!(
            analyze_reliability(&f, &comps, &lethal, &[0.1, 0.1, 1.5], &options),
            Err(CoreError::Defect(_))
        ));
    }
}
