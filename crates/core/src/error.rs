//! Error type for the yield-analysis pipeline.

use std::fmt;

use socy_dd::DdError;
use socy_defect::DefectError;
use socy_faulttree::NetlistError;
use socy_ordering::OrderingError;

/// Errors produced by the end-to-end yield analysis.
#[derive(Debug)]
pub enum CoreError {
    /// The fault tree is malformed (e.g. no designated output).
    FaultTree(NetlistError),
    /// The defect model is malformed or the truncation point could not be
    /// reached.
    Defect(DefectError),
    /// The ordering specification is invalid for the given problem.
    Ordering(OrderingError),
    /// The fault tree and the component model disagree on the number of
    /// components.
    ComponentCountMismatch {
        /// Inputs of the fault tree.
        fault_tree: usize,
        /// Entries of the component probability model.
        components: usize,
    },
    /// The fault tree has no components at all.
    EmptySystem,
    /// A what-if delta is inconsistent with the base system it refers to
    /// (unknown component index, mismatched input count, malformed
    /// subtree replacement).
    InvalidDelta(String),
    /// A governed compilation exceeded its resource limits (node budget,
    /// deadline) or was cancelled. The manager the compilation ran in is
    /// left consistent — callers may retry, degrade through a
    /// [`crate::degrade::DegradeLadder`] or answer with Monte-Carlo
    /// bounds.
    Resource(DdError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::FaultTree(e) => write!(f, "fault tree error: {e}"),
            CoreError::Defect(e) => write!(f, "defect model error: {e}"),
            CoreError::Ordering(e) => write!(f, "ordering error: {e}"),
            CoreError::ComponentCountMismatch { fault_tree, components } => write!(
                f,
                "fault tree has {fault_tree} components but the probability model has {components}"
            ),
            CoreError::EmptySystem => write!(f, "the system has no components"),
            CoreError::InvalidDelta(message) => write!(f, "invalid system delta: {message}"),
            CoreError::Resource(e) => write!(f, "resource limit: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::FaultTree(e) => Some(e),
            CoreError::Defect(e) => Some(e),
            CoreError::Ordering(e) => Some(e),
            CoreError::Resource(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DdError> for CoreError {
    fn from(e: DdError) -> Self {
        CoreError::Resource(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::FaultTree(e)
    }
}

impl From<DefectError> for CoreError {
    fn from(e: DefectError) -> Self {
        CoreError::Defect(e)
    }
}

impl From<OrderingError> for CoreError {
    fn from(e: OrderingError) -> Self {
        CoreError::Ordering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = NetlistError::NoOutput.into();
        assert!(format!("{e}").contains("fault tree"));
        let e: CoreError = DefectError::EmptyDistribution.into();
        assert!(format!("{e}").contains("defect"));
        let e: CoreError =
            OrderingError::GroupsDoNotPartitionInputs { covered: 1, inputs: 2 }.into();
        assert!(format!("{e}").contains("ordering"));
        let e = CoreError::ComponentCountMismatch { fault_tree: 3, components: 2 };
        assert!(format!("{e}").contains('3'));
        assert!(format!("{}", CoreError::EmptySystem).contains("no components"));
        let e: CoreError = DdError::Cancelled.into();
        assert!(format!("{e}").contains("resource limit"));
        use std::error::Error;
        assert!(CoreError::EmptySystem.source().is_none());
        assert!(CoreError::from(NetlistError::NoOutput).source().is_some());
        assert!(CoreError::from(DdError::Cancelled).source().is_some());
    }
}
