//! Graceful degradation of resource-governed analyses: the
//! [`DegradeLadder`] walked by [`Pipeline::evaluate_governed`] and the
//! [`Fidelity`] tag every [`YieldReport`] carries.
//!
//! A governed compilation that exceeds its node budget or deadline fails
//! with [`CoreError::Resource`](crate::CoreError::Resource) — but a
//! service answering requests wants *an answer*, not an error. The
//! ladder formalises the retreat: retry the analysis under progressively
//! cheaper settings ([`DegradeStep`]s), and when even the cheapest exact
//! variant does not fit, fall back to `socy-sim` Monte-Carlo confidence
//! bounds. Every report says which rung produced it, so downstream
//! consumers can distinguish a guaranteed lower bound from a statistical
//! interval.
//!
//! [`Pipeline::evaluate_governed`]: crate::Pipeline::evaluate_governed
//! [`YieldReport`]: crate::YieldReport

use crate::analysis::AnalysisOptions;

/// One rung of the degradation ladder: a cheaper variant of the original
/// analysis options, still answered by the exact combinatorial method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradeStep {
    /// Multiply the error requirement `ε` by `factor` (> 1), shrinking
    /// the truncation `M` and with it the compiled diagrams. Clears any
    /// fixed truncation so the coarser `ε` actually takes effect.
    CoarsenEpsilon {
        /// Multiplier applied to `ε` (use powers of ten).
        factor: f64,
    },
    /// Force dynamic sifting with the given growth bound (percent,
    /// ≥ 100) onto the ordering specification: a sifted diagram converts
    /// into a smaller ROMDD when the static order was the problem.
    Sift {
        /// Sifting growth bound in percent of the pre-sift size.
        max_growth: u32,
    },
    /// Clamp the truncation to at most `max` defects, abandoning the
    /// requested `ε` but keeping the exact evaluation (the report's
    /// `error_bound` still states the — now larger — guaranteed error).
    ReduceTruncation {
        /// Largest truncation point to compile at.
        max: usize,
    },
}

impl DegradeStep {
    /// The options this rung retries with, derived from the original
    /// request's options.
    pub fn apply(&self, options: &AnalysisOptions) -> AnalysisOptions {
        let mut out = *options;
        match *self {
            DegradeStep::CoarsenEpsilon { factor } => {
                out.epsilon = options.epsilon * factor;
                out.fixed_truncation = None;
            }
            DegradeStep::Sift { max_growth } => {
                out.spec = options.spec.with_sifting(max_growth);
            }
            DegradeStep::ReduceTruncation { max } => {
                out.fixed_truncation = Some(options.fixed_truncation.map_or(max, |m| m.min(max)));
            }
        }
        out
    }

    /// Short label of the rung, used in [`Fidelity::tag`].
    pub fn label(&self) -> &'static str {
        match self {
            DegradeStep::CoarsenEpsilon { .. } => "epsilon",
            DegradeStep::Sift { .. } => "sift",
            DegradeStep::ReduceTruncation { .. } => "truncation",
        }
    }
}

/// How a [`YieldReport`](crate::YieldReport) was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Fidelity {
    /// The exact combinatorial method under the requested options: the
    /// report's `yield_lower_bound` is a guaranteed lower bound with
    /// guaranteed absolute error ≤ `error_bound`.
    #[default]
    Exact,
    /// The exact method under a degraded rung of the ladder: still a
    /// guaranteed lower bound, but under cheaper options than requested
    /// (coarser `ε`, forced sifting or a clamped truncation — see the
    /// report's own `error_bound`/`truncation` for what was delivered).
    Degraded {
        /// The ladder rung that produced the answer.
        step: DegradeStep,
    },
    /// `socy-sim` Monte-Carlo confidence bounds: `yield_lower_bound` is
    /// the *lower confidence limit* and `error_bound` the interval
    /// width — statistical, not guaranteed.
    Bounds {
        /// Lower confidence limit of the yield.
        lower: f64,
        /// Upper confidence limit of the yield.
        upper: f64,
    },
}

impl Fidelity {
    /// Wire/CLI tag of the fidelity: `exact`, `degraded:<rung>` or
    /// `bounds`.
    pub fn tag(&self) -> String {
        match self {
            Fidelity::Exact => "exact".to_string(),
            Fidelity::Degraded { step } => format!("degraded:{}", step.label()),
            Fidelity::Bounds { .. } => "bounds".to_string(),
        }
    }

    /// Whether the answer came from the exact method under the requested
    /// options.
    pub fn is_exact(&self) -> bool {
        matches!(self, Fidelity::Exact)
    }
}

/// The full retreat plan of a governed evaluation: the exact-method
/// rungs to retry, then the Monte-Carlo fallback's sampling parameters.
///
/// Every rung recompiles under the same [`CompileOptions`] limits as the
/// original attempt (fresh governor, so the budget and deadline apply
/// per attempt). The Monte-Carlo fallback is deterministic for a fixed
/// `(samples, seed)` and independent of compile threads, so degraded
/// answers are as reproducible as exact ones.
///
/// [`CompileOptions`]: socy_dd::CompileOptions
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeLadder {
    /// Exact-method rungs, tried in order.
    pub steps: Vec<DegradeStep>,
    /// Monte-Carlo samples of the final fallback.
    pub samples: usize,
    /// RNG seed of the fallback (fixed ⇒ deterministic bounds).
    pub seed: u64,
    /// Confidence multiplier of the reported interval (`3.0` ≈ 99.7%).
    pub z: f64,
}

impl Default for DegradeLadder {
    fn default() -> Self {
        DegradeLadder {
            steps: vec![
                DegradeStep::CoarsenEpsilon { factor: 100.0 },
                DegradeStep::Sift { max_growth: 120 },
                DegradeStep::ReduceTruncation { max: 1 },
            ],
            samples: 20_000,
            seed: 0x50C7_1E1D,
            z: 3.0,
        }
    }
}

impl DegradeLadder {
    /// A ladder with no exact-method rungs: over-budget analyses go
    /// straight to Monte-Carlo bounds. Services pinning fixtures use
    /// this — the bounds are deterministic at every thread count,
    /// whereas whether an intermediate rung fits a budget is not a
    /// contract.
    pub fn bounds_only() -> Self {
        DegradeLadder { steps: Vec::new(), ..DegradeLadder::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_apply_to_options() {
        let base =
            AnalysisOptions { epsilon: 1e-4, fixed_truncation: Some(9), ..Default::default() };
        let coarse = DegradeStep::CoarsenEpsilon { factor: 100.0 }.apply(&base);
        assert!((coarse.epsilon - 1e-2).abs() < 1e-15);
        assert_eq!(coarse.fixed_truncation, None);

        let sifted = DegradeStep::Sift { max_growth: 120 }.apply(&base);
        assert_eq!(sifted.spec.sift_max_growth(), Some(120));

        let clamped = DegradeStep::ReduceTruncation { max: 2 }.apply(&base);
        assert_eq!(clamped.fixed_truncation, Some(2));
        let unclamped = DegradeStep::ReduceTruncation { max: 2 }
            .apply(&AnalysisOptions { fixed_truncation: None, ..base });
        assert_eq!(unclamped.fixed_truncation, Some(2));
    }

    #[test]
    fn fidelity_tags() {
        assert_eq!(Fidelity::Exact.tag(), "exact");
        assert!(Fidelity::Exact.is_exact());
        assert_eq!(
            Fidelity::Degraded { step: DegradeStep::Sift { max_growth: 120 } }.tag(),
            "degraded:sift"
        );
        let bounds = Fidelity::Bounds { lower: 0.4, upper: 0.6 };
        assert_eq!(bounds.tag(), "bounds");
        assert!(!bounds.is_exact());
        assert_eq!(Fidelity::default(), Fidelity::Exact);
    }

    #[test]
    fn default_ladder_ends_cheap() {
        let ladder = DegradeLadder::default();
        assert!(!ladder.steps.is_empty());
        assert!(matches!(ladder.steps.last(), Some(DegradeStep::ReduceTruncation { .. })));
        assert!(DegradeLadder::bounds_only().steps.is_empty());
        assert_eq!(DegradeLadder::bounds_only().seed, ladder.seed);
    }
}
