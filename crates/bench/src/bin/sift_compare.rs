//! Table-2-style comparison of static orderings against dynamic sifting:
//! for each benchmark instance the coded-ROBDD and ROMDD sizes under a
//! static specification are printed next to the sizes after group sifting
//! improved the same base order (whole bit groups move as units, so the
//! coded layout stays convertible).
//!
//! The paper fixes orderings up front; this experiment quantifies how
//! much a Rudell-style dynamic reorder recovers when the up-front choice
//! is mediocre (`wv/ml`) and how little it needs to fix when the choice
//! is already good (`w/ml`).

use serde::Serialize;
use soc_yield_bench::{maybe_write_json, paper_workloads, parse_cli, CliArgs, Runner};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec, DEFAULT_SIFT_MAX_GROWTH};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    lambda: f64,
    ordering: String,
    static_robdd: usize,
    sifted_robdd: usize,
    static_romdd: usize,
    sifted_romdd: usize,
    yield_lower_bound: f64,
}

fn main() {
    let CliArgs { max_components, json, .. } = parse_cli(20);
    println!("Static vs sifted orderings (growth bound {DEFAULT_SIFT_MAX_GROWTH}%)");
    println!(
        "{:<18} {:<6} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "base", "ROBDD", "ROBDD+sift", "ROMDD", "ROMDD+sift"
    );
    let bases = [
        OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).expect("valid combination"),
        OrderingSpec::paper_default(),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut runner = Runner::new();
    for workload in paper_workloads(max_components) {
        if workload.lambda != 1.0 {
            continue; // one λ' per instance keeps the comparison readable
        }
        for base in bases {
            let sifted_spec = base.with_sifting(DEFAULT_SIFT_MAX_GROWTH);
            let fixed = match runner.run(&workload, base) {
                Ok(row) => row,
                Err(e) => {
                    eprintln!("{}: {base:?} failed: {e}", workload.label());
                    continue;
                }
            };
            let sifted = match runner.run_report(&workload, sifted_spec) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("{}: {:?} failed: {e}", workload.label(), sifted_spec);
                    continue;
                }
            };
            let presift = sifted.presift_robdd_size.expect("sifted runs record both sizes");
            assert_eq!(
                presift, fixed.robdd_size,
                "the sifted run starts from the same static compile"
            );
            assert!(
                (fixed.yield_lower_bound - sifted.yield_lower_bound).abs() < 1e-9,
                "reordering must not change the yield"
            );
            println!(
                "{:<18} {:<6} {:>12} {:>12} {:>10} {:>10}",
                workload.label(),
                base.label(),
                fixed.robdd_size,
                sifted.coded_robdd_size,
                fixed.romdd_size,
                sifted.romdd_size,
            );
            rows.push(Row {
                benchmark: workload.system.name.clone(),
                lambda: workload.lambda,
                ordering: base.label(),
                static_robdd: fixed.robdd_size,
                sifted_robdd: sifted.coded_robdd_size,
                static_romdd: fixed.romdd_size,
                sifted_romdd: sifted.romdd_size,
                yield_lower_bound: fixed.yield_lower_bound,
            });
        }
    }
    maybe_write_json(&json, &rows);
}
