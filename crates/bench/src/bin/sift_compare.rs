//! Table-2-style comparison of static orderings against dynamic sifting:
//! for each benchmark instance the coded-ROBDD and ROMDD sizes under a
//! static specification are printed next to the sizes after group sifting
//! improved the same base order (whole bit groups move as units, so the
//! coded layout stays convertible).
//!
//! The paper fixes orderings up front; this experiment quantifies how
//! much a Rudell-style dynamic reorder recovers when the up-front choice
//! is mediocre (`wv/ml`) and how little it needs to fix when the choice
//! is already good (`w/ml`). Each (static, sifted) pair is evaluated
//! through the parallel sweep engine — `--threads N` sizes the pool.

use serde::Serialize;
use soc_yield_bench::{
    maybe_write_json, paper_workloads, parse_cli, run_table, summary_line, CliArgs, Workload,
};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec, DEFAULT_SIFT_MAX_GROWTH};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    lambda: f64,
    ordering: String,
    static_robdd: usize,
    sifted_robdd: usize,
    static_romdd: usize,
    sifted_romdd: usize,
    yield_lower_bound: f64,
}

fn main() {
    let CliArgs { max_components, json, threads, options, .. } = parse_cli(20);
    println!("Static vs sifted orderings (growth bound {DEFAULT_SIFT_MAX_GROWTH}%)");
    println!(
        "{:<18} {:<6} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "base", "ROBDD", "ROBDD+sift", "ROMDD", "ROMDD+sift"
    );
    let bases = [
        OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).expect("valid combination"),
        OrderingSpec::paper_default(),
    ];
    // Each workload's cell holds the static and sifted variant of both
    // bases, in interleaved order: [wv, wv+sift, w, w+sift].
    let specs: Vec<OrderingSpec> =
        bases.iter().flat_map(|&base| [base, base.with_sifting(DEFAULT_SIFT_MAX_GROWTH)]).collect();
    let cells: Vec<(Workload, Vec<OrderingSpec>)> = paper_workloads(max_components)
        .into_iter()
        .filter(|w| w.lambda == 1.0) // one λ' per instance keeps the comparison readable
        .map(|workload| (workload, specs.clone()))
        .collect();
    let outcome = match run_table(&cells, threads, options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sift comparison failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows: Vec<Row> = Vec::new();
    for ((workload, _), results) in cells.iter().zip(&outcome.cells) {
        for (base, pair) in bases.iter().zip(results.chunks(2)) {
            let (fixed, sifted) = match (&pair[0], &pair[1]) {
                (Ok(fixed), Ok(sifted)) => (fixed, sifted),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{}: {e}", workload.label());
                    continue;
                }
            };
            let presift = sifted.presift_robdd_size.expect("sifted runs record both sizes");
            assert_eq!(
                presift, fixed.coded_robdd_size,
                "the sifted run starts from the same static compile"
            );
            assert!(
                (fixed.yield_lower_bound - sifted.yield_lower_bound).abs() < 1e-9,
                "reordering must not change the yield"
            );
            println!(
                "{:<18} {:<6} {:>12} {:>12} {:>10} {:>10}",
                workload.label(),
                base.label(),
                fixed.coded_robdd_size,
                sifted.coded_robdd_size,
                fixed.romdd_size,
                sifted.romdd_size,
            );
            rows.push(Row {
                benchmark: workload.system.name.clone(),
                lambda: workload.lambda,
                ordering: base.label(),
                static_robdd: fixed.coded_robdd_size,
                sifted_robdd: sifted.coded_robdd_size,
                static_romdd: fixed.romdd_size,
                sifted_romdd: sifted.romdd_size,
                yield_lower_bound: fixed.yield_lower_bound,
            });
        }
    }
    eprintln!("({})", summary_line(&outcome.summary));
    maybe_write_json(&json, &rows);
}
