//! Reproduces Table 3: coded-ROBDD size (number of nodes) for the bit-group
//! orderings ml, lm and w, with the weight heuristic ordering the
//! multiple-valued variables.

use soc_yield_bench::{maybe_write_json, paper_workloads, parse_cli, CliArgs, ResultRow, Runner};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn main() {
    let CliArgs { max_components, json, .. } = parse_cli(34);
    println!("Table 3: coded ROBDD size per bit-group ordering (MV ordering: w)");
    println!("{:<18} {:>12} {:>12} {:>12}", "benchmark", "ml", "lm", "w");
    let mut rows: Vec<ResultRow> = Vec::new();
    let mut runner = Runner::new();
    for workload in paper_workloads(max_components) {
        let mut sizes = Vec::new();
        for group in [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst, GroupOrdering::Weight] {
            let spec = OrderingSpec::new(MvOrdering::Weight, group)
                .expect("all three combine with the weight MV ordering");
            match runner.run(&workload, spec) {
                Ok(row) => {
                    sizes.push(row.robdd_size.to_string());
                    rows.push(row);
                }
                Err(e) => {
                    eprintln!("{}: {spec} failed: {e}", workload.label());
                    sizes.push("-".to_string());
                }
            }
        }
        println!("{:<18} {:>12} {:>12} {:>12}", workload.label(), sizes[0], sizes[1], sizes[2]);
    }
    maybe_write_json(&json, &rows);
}
