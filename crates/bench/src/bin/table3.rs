//! Reproduces Table 3: coded-ROBDD size (number of nodes) for the bit-group
//! orderings ml, lm and w, with the weight heuristic ordering the
//! multiple-valued variables. All cells are evaluated through the
//! parallel sweep engine; `--threads N` sizes its worker pool without
//! changing a single number.

use soc_yield_bench::{
    maybe_write_json, paper_workloads, parse_cli, run_table, summary_line, CliArgs, ResultRow,
    Workload,
};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn main() {
    let CliArgs { max_components, json, threads, options, .. } = parse_cli(34);
    println!("Table 3: coded ROBDD size per bit-group ordering (MV ordering: w)");
    println!("{:<18} {:>12} {:>12} {:>12}", "benchmark", "ml", "lm", "w");
    let specs: Vec<OrderingSpec> =
        [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst, GroupOrdering::Weight]
            .iter()
            .map(|&group| {
                OrderingSpec::new(MvOrdering::Weight, group)
                    .expect("all three combine with the weight MV ordering")
            })
            .collect();
    let cells: Vec<(Workload, Vec<OrderingSpec>)> = paper_workloads(max_components)
        .into_iter()
        .map(|workload| (workload, specs.clone()))
        .collect();
    let outcome = match run_table(&cells, threads, options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("table 3 failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows: Vec<ResultRow> = Vec::new();
    for ((workload, _), results) in cells.iter().zip(&outcome.cells) {
        let mut sizes = Vec::new();
        for result in results {
            match result {
                Ok(report) => {
                    sizes.push(report.coded_robdd_size.to_string());
                    rows.push(ResultRow::from_report(workload, report));
                }
                Err(e) => {
                    eprintln!("{}: {e}", workload.label());
                    sizes.push("-".to_string());
                }
            }
        }
        println!("{:<18} {:>12} {:>12} {:>12}", workload.label(), sizes[0], sizes[1], sizes[2]);
    }
    eprintln!("({})", summary_line(&outcome.summary));
    maybe_write_json(&json, &rows);
}
