//! CI gate for the paper anchors and the perf-smoke sweep: compares a
//! freshly produced JSON dump against its pinned fixture under
//! `tests/fixtures/`, ignoring only the volatile wall-clock/environment
//! fields (`seconds`, `*_seconds`, `threads`, `compile_threads`, the
//! `par_*` and `*complement_hits` counters). Any drift in node counts,
//! peaks, truncations, cache statistics or yields fails the build with
//! a per-field report; missing or malformed files fail with a readable
//! message instead of a panic.
//!
//! With `--volatile-cache-counters` the `*_cache_*` tallies are exempt
//! too: the concurrent op cache used at `--compile-threads > 1` is
//! lossy, so its hit/miss/eviction counts are scheduling-dependent even
//! though every result (yields, node counts, truncations) stays
//! bit-identical — this is the mode CI uses to gate a parallel-compile
//! run against the sequential fixture.
//!
//! With `--complement-invariant` only the complement-*invariant* fields
//! are gated: the ROBDD-side node counts (`robdd_size`, `robdd_peak`,
//! `robdd_unique_entries`, …) and all cache counters are exempt, while
//! yields, error bounds, truncations and ROMDD node counts must still
//! match bit-for-bit. This is the mode CI uses to gate a
//! `--no-complement-edges` regeneration against the complement-enabled
//! fixture, proving the complemented-edge toggle is a pure
//! representation knob.
//!
//! With `--delta-equivalence` the same result fields as
//! `--complement-invariant` are gated, plus the execution-shape totals
//! (`chunks`) are exempt: an incremental `sweep_deltas` run compiles a
//! delta family as **one** chunk while the `--scratch-deltas`
//! materialized run compiles one chunk per variant, yet every reported
//! yield, truncation and ROMDD node count must be bit-identical. This is
//! the mode CI uses to prove the incremental what-if path equivalent to
//! from-scratch compilation.
//!
//! Usage: `anchor_check [--volatile-cache-counters | --complement-invariant |
//! --delta-equivalence] <fixture.json> <actual.json> [...more pairs]`

use soc_yield_bench::{
    diff_anchor_values_complement_invariant, diff_anchor_values_delta_equivalence,
    diff_anchor_values_lax,
};

/// Which field-exemption policy the comparison runs under.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    VolatileCacheCounters,
    ComplementInvariant,
    DeltaEquivalence,
}

fn read(path: &str, role: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {role} {path}: {e}"))
}

fn check_pair(fixture_path: &str, actual_path: &str, mode: Mode) -> Result<(), String> {
    let fixture = read(fixture_path, "fixture")?;
    let actual = read(actual_path, "file")?;
    let diffs = match mode {
        Mode::Strict => diff_anchor_values_lax(&fixture, &actual, false),
        Mode::VolatileCacheCounters => diff_anchor_values_lax(&fixture, &actual, true),
        Mode::ComplementInvariant => diff_anchor_values_complement_invariant(&fixture, &actual),
        Mode::DeltaEquivalence => diff_anchor_values_delta_equivalence(&fixture, &actual),
    };
    match diffs {
        Err(message) => Err(message),
        Ok(diffs) if diffs.is_empty() => Ok(()),
        Ok(diffs) => Err(format!("{} divergent field(s):\n  {}", diffs.len(), diffs.join("\n  "))),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Strict;
    let mut conflicting = false;
    args.retain(|arg| {
        let selected = match arg.as_str() {
            "--volatile-cache-counters" => Mode::VolatileCacheCounters,
            "--complement-invariant" => Mode::ComplementInvariant,
            "--delta-equivalence" => Mode::DeltaEquivalence,
            _ => return true,
        };
        conflicting |= mode != Mode::Strict && mode != selected;
        mode = selected;
        false
    });
    if conflicting || args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!(
            "usage: anchor_check [--volatile-cache-counters | --complement-invariant | \
             --delta-equivalence] <fixture.json> <actual.json> [...more pairs]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args.chunks(2) {
        let (fixture_path, actual_path) = (&pair[0], &pair[1]);
        match check_pair(fixture_path, actual_path, mode) {
            Ok(()) => println!("OK   {actual_path} matches {fixture_path}"),
            Err(report) => {
                eprintln!("FAIL {actual_path} vs {fixture_path}\n{report}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "anchors drifted — if the change is intentional, regenerate the fixtures \
             with the table binaries / bench_matrix (see .github/workflows/ci.yml, jobs \
             `paper-anchors` and `perf-smoke`)"
        );
        std::process::exit(1);
    }
}
