//! CI gate for the paper anchors: compares a freshly produced table JSON
//! dump against its pinned fixture under `tests/fixtures/`, ignoring only
//! the volatile wall-clock fields. Any drift in node counts, peaks,
//! truncations, cache statistics or yields fails the build.
//!
//! Usage: `anchor_check <fixture.json> <actual.json> [...more pairs]`

use soc_yield_bench::diff_anchors;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: anchor_check <fixture.json> <actual.json> [...more pairs]");
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args.chunks(2) {
        let (fixture_path, actual_path) = (&pair[0], &pair[1]);
        let fixture = match std::fs::read_to_string(fixture_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read fixture {fixture_path}: {e}");
                failed = true;
                continue;
            }
        };
        let actual = match std::fs::read_to_string(actual_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {actual_path}: {e}");
                failed = true;
                continue;
            }
        };
        match diff_anchors(&fixture, &actual) {
            None => println!("OK   {actual_path} matches {fixture_path}"),
            Some(report) => {
                eprintln!("FAIL {actual_path} drifted from {fixture_path}\n{report}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "paper anchors drifted — if the change is intentional, regenerate the fixtures \
             with the table binaries (see .github/workflows/ci.yml, job `paper-anchors`)"
        );
        std::process::exit(1);
    }
}
