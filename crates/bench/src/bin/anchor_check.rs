//! CI gate for the paper anchors and the perf-smoke sweep: compares a
//! freshly produced JSON dump against its pinned fixture under
//! `tests/fixtures/`, ignoring only the volatile wall-clock/environment
//! fields (`seconds`, `*_seconds`, `threads`, `compile_threads`, the
//! `par_*` counters). Any drift in node counts, peaks, truncations,
//! cache statistics or yields fails the build with a per-field report;
//! missing or malformed files fail with a readable message instead of a
//! panic.
//!
//! With `--volatile-cache-counters` the `*_cache_*` tallies are exempt
//! too: the concurrent op cache used at `--compile-threads > 1` is
//! lossy, so its hit/miss/eviction counts are scheduling-dependent even
//! though every result (yields, node counts, truncations) stays
//! bit-identical — this is the mode CI uses to gate a parallel-compile
//! run against the sequential fixture.
//!
//! Usage: `anchor_check [--volatile-cache-counters] <fixture.json> <actual.json> [...more pairs]`

use soc_yield_bench::diff_anchor_values_lax;

fn read(path: &str, role: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {role} {path}: {e}"))
}

fn check_pair(fixture_path: &str, actual_path: &str, lax_cache: bool) -> Result<(), String> {
    let fixture = read(fixture_path, "fixture")?;
    let actual = read(actual_path, "file")?;
    match diff_anchor_values_lax(&fixture, &actual, lax_cache) {
        Err(message) => Err(message),
        Ok(diffs) if diffs.is_empty() => Ok(()),
        Ok(diffs) => Err(format!("{} divergent field(s):\n  {}", diffs.len(), diffs.join("\n  "))),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut lax_cache = false;
    args.retain(|arg| {
        if arg == "--volatile-cache-counters" {
            lax_cache = true;
            false
        } else {
            true
        }
    });
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!(
            "usage: anchor_check [--volatile-cache-counters] \
             <fixture.json> <actual.json> [...more pairs]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for pair in args.chunks(2) {
        let (fixture_path, actual_path) = (&pair[0], &pair[1]);
        match check_pair(fixture_path, actual_path, lax_cache) {
            Ok(()) => println!("OK   {actual_path} matches {fixture_path}"),
            Err(report) => {
                eprintln!("FAIL {actual_path} vs {fixture_path}\n{report}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "anchors drifted — if the change is intentional, regenerate the fixtures \
             with the table binaries / bench_matrix (see .github/workflows/ci.yml, jobs \
             `paper-anchors` and `perf-smoke`)"
        );
        std::process::exit(1);
    }
}
