//! Reproduces Table 1: the benchmark inventory (number of components and
//! number of gates of the gate-level fault-tree descriptions).

use serde::Serialize;
use soc_yield_bench::{maybe_write_json, parse_cli, CliArgs};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    components: usize,
    gates: usize,
    paper_components: usize,
    paper_gates: usize,
}

fn main() {
    let CliArgs { max_components, json, .. } = parse_cli(usize::MAX);
    // (name, C, gates) as printed in the paper's Table 1.
    let paper: &[(&str, usize, usize)] = &[
        ("MS2", 18, 27),
        ("MS4", 30, 51),
        ("MS6", 42, 75),
        ("MS8", 54, 99),
        ("MS10", 66, 123),
        ("ESEN4x1", 14, 13),
        ("ESEN4x2", 26, 26),
        ("ESEN4x4", 34, 74),
        ("ESEN8x1", 32, 73),
        ("ESEN8x2", 56, 122),
        ("ESEN8x4", 72, 314),
    ];
    println!("Table 1: benchmark inventory (paper values in parentheses)");
    println!("{:<10} {:>14} {:>18}", "benchmark", "components", "fault-tree gates");
    let mut rows = Vec::new();
    for system in socy_benchmarks::paper_benchmarks() {
        if system.num_components() > max_components {
            continue;
        }
        let reference = paper.iter().find(|(name, _, _)| *name == system.name);
        let (pc, pg) = reference.map(|&(_, c, g)| (c, g)).unwrap_or((0, 0));
        println!(
            "{:<10} {:>8} ({:>3}) {:>12} ({:>3})",
            system.name,
            system.num_components(),
            pc,
            system.num_gates(),
            pg
        );
        rows.push(Row {
            benchmark: system.name.clone(),
            components: system.num_components(),
            gates: system.num_gates(),
            paper_components: pc,
            paper_gates: pg,
        });
    }
    maybe_write_json(&json, &rows);
}
