//! Reproduces Table 4: full-pipeline metrics with the paper's preferred
//! heuristics (weight ordering for the multiple-valued variables,
//! most-significant-bit-first groups): CPU time, peak ROBDD nodes, final
//! coded-ROBDD size, ROMDD size and the computed yield.
//!
//! For the smaller instances the combinatorial result is cross-checked
//! against a Monte-Carlo simulation (100k samples), mirroring the sanity
//! check a practitioner would perform. The pipeline rows are evaluated
//! through the parallel sweep engine (`--threads N`); the Monte-Carlo
//! cross-check runs afterwards on the main thread.

use serde::Serialize;
use soc_yield_bench::{
    maybe_write_json, paper_workloads, parse_cli, run_table, summary_line, CliArgs, ResultRow,
    Workload, ALPHA, LETHALITY,
};
use socy_defect::NegativeBinomial;
use socy_ordering::OrderingSpec;
use socy_sim::{MonteCarloYield, SimulationOptions};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    lambda: f64,
    truncation: usize,
    seconds: f64,
    robdd_peak: usize,
    robdd_size: usize,
    romdd_size: usize,
    yield_lower_bound: f64,
    error_bound: f64,
    robdd_unique_entries: usize,
    robdd_cache_hits: u64,
    robdd_cache_misses: u64,
    monte_carlo_yield: Option<f64>,
    monte_carlo_std_error: Option<f64>,
}

fn monte_carlo(workload: &Workload) -> Option<socy_sim::YieldEstimate> {
    if workload.system.num_components() > 60 {
        return None;
    }
    let components =
        workload.system.component_probabilities(LETHALITY).expect("benchmark weights are valid");
    let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA).expect("valid parameters");
    let lethal = raw.thinned(components.lethality()).expect("valid lethality");
    MonteCarloYield::new(
        &workload.system.fault_tree,
        &components,
        &lethal,
        SimulationOptions::default(),
    )
    .ok()
    .map(|sim| sim.run(100_000, 2003))
}

fn main() {
    let CliArgs { max_components, json, threads, options, .. } = parse_cli(34);
    println!("Table 4: pipeline performance with heuristics w + ml");
    println!(
        "{:<18} {:>3} {:>9} {:>12} {:>12} {:>10} {:>10} {:>11} {:>11} {:>8} {:>10}",
        "benchmark",
        "M",
        "time (s)",
        "ROBDD peak",
        "ROBDD",
        "ROMDD",
        "unique",
        "cache hit",
        "cache miss",
        "yield",
        "MC yield"
    );
    let cells: Vec<(Workload, Vec<OrderingSpec>)> = paper_workloads(max_components)
        .into_iter()
        .map(|workload| (workload, vec![OrderingSpec::paper_default()]))
        .collect();
    let outcome = match run_table(&cells, threads, options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("table 4 failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows: Vec<Row> = Vec::new();
    for ((workload, _), results) in cells.iter().zip(&outcome.cells) {
        let row = match &results[0] {
            Ok(report) => ResultRow::from_report(workload, report),
            Err(e) => {
                eprintln!("{} failed: {e}", workload.label());
                continue;
            }
        };
        // The paper's CPU-time column covers the whole pipeline. Each
        // row here is one compile plus one evaluation, so their sum
        // restores that semantic (a sweep report's `seconds` alone only
        // times the evaluation).
        let seconds = row.compile_seconds + row.seconds;
        // Monte-Carlo cross-check on moderately sized instances.
        let mc = monte_carlo(workload);
        println!(
            "{:<18} {:>3} {:>9.2} {:>12} {:>12} {:>10} {:>10} {:>11} {:>11} {:>8.3} {:>10}",
            workload.label(),
            row.truncation,
            seconds,
            row.robdd_peak,
            row.robdd_size,
            row.romdd_size,
            row.robdd_unique_entries,
            row.robdd_cache_hits,
            row.robdd_cache_misses,
            row.yield_lower_bound,
            mc.map(|e| format!("{:.3}", e.yield_estimate)).unwrap_or_else(|| "-".to_string()),
        );
        rows.push(Row {
            benchmark: row.benchmark,
            lambda: row.lambda,
            truncation: row.truncation,
            seconds,
            robdd_peak: row.robdd_peak,
            robdd_size: row.robdd_size,
            romdd_size: row.romdd_size,
            yield_lower_bound: row.yield_lower_bound,
            error_bound: row.error_bound,
            robdd_unique_entries: row.robdd_unique_entries,
            robdd_cache_hits: row.robdd_cache_hits,
            robdd_cache_misses: row.robdd_cache_misses,
            monte_carlo_yield: mc.map(|e| e.yield_estimate),
            monte_carlo_std_error: mc.map(|e| e.standard_error),
        });
    }
    eprintln!("({})", summary_line(&outcome.summary));
    maybe_write_json(&json, &rows);
}
