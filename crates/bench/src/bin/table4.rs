//! Reproduces Table 4: full-pipeline metrics with the paper's preferred
//! heuristics (weight ordering for the multiple-valued variables,
//! most-significant-bit-first groups): CPU time, peak ROBDD nodes, final
//! coded-ROBDD size, ROMDD size and the computed yield.
//!
//! For the smaller instances the combinatorial result is cross-checked
//! against a Monte-Carlo simulation (100k samples), mirroring the sanity
//! check a practitioner would perform.

use serde::Serialize;
use soc_yield_bench::{
    maybe_write_json, paper_workloads, parse_cli, CliArgs, Runner, ALPHA, LETHALITY,
};
use socy_defect::NegativeBinomial;
use socy_ordering::OrderingSpec;
use socy_sim::{MonteCarloYield, SimulationOptions};

#[derive(Serialize)]
struct Row {
    benchmark: String,
    lambda: f64,
    truncation: usize,
    seconds: f64,
    robdd_peak: usize,
    robdd_size: usize,
    romdd_size: usize,
    yield_lower_bound: f64,
    error_bound: f64,
    robdd_unique_entries: usize,
    robdd_cache_hits: u64,
    robdd_cache_misses: u64,
    monte_carlo_yield: Option<f64>,
    monte_carlo_std_error: Option<f64>,
}

fn main() {
    let CliArgs { max_components, json, .. } = parse_cli(34);
    println!("Table 4: pipeline performance with heuristics w + ml");
    println!(
        "{:<18} {:>3} {:>9} {:>12} {:>12} {:>10} {:>10} {:>11} {:>11} {:>8} {:>10}",
        "benchmark",
        "M",
        "time (s)",
        "ROBDD peak",
        "ROBDD",
        "ROMDD",
        "unique",
        "cache hit",
        "cache miss",
        "yield",
        "MC yield"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut runner = Runner::new();
    for workload in paper_workloads(max_components) {
        let row = match runner.run(&workload, OrderingSpec::paper_default()) {
            Ok(row) => row,
            Err(e) => {
                eprintln!("{} failed: {e}", workload.label());
                continue;
            }
        };
        // Monte-Carlo cross-check on moderately sized instances.
        let mc = if workload.system.num_components() <= 60 {
            let components = workload
                .system
                .component_probabilities(LETHALITY)
                .expect("benchmark weights are valid");
            let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA)
                .expect("valid parameters");
            let lethal = raw.thinned(components.lethality()).expect("valid lethality");
            MonteCarloYield::new(
                &workload.system.fault_tree,
                &components,
                &lethal,
                SimulationOptions::default(),
            )
            .ok()
            .map(|sim| sim.run(100_000, 2003))
        } else {
            None
        };
        println!(
            "{:<18} {:>3} {:>9.2} {:>12} {:>12} {:>10} {:>10} {:>11} {:>11} {:>8.3} {:>10}",
            workload.label(),
            row.truncation,
            row.seconds,
            row.robdd_peak,
            row.robdd_size,
            row.romdd_size,
            row.robdd_unique_entries,
            row.robdd_cache_hits,
            row.robdd_cache_misses,
            row.yield_lower_bound,
            mc.map(|e| format!("{:.3}", e.yield_estimate)).unwrap_or_else(|| "-".to_string()),
        );
        rows.push(Row {
            benchmark: row.benchmark,
            lambda: row.lambda,
            truncation: row.truncation,
            seconds: row.seconds,
            robdd_peak: row.robdd_peak,
            robdd_size: row.robdd_size,
            romdd_size: row.romdd_size,
            yield_lower_bound: row.yield_lower_bound,
            error_bound: row.error_bound,
            robdd_unique_entries: row.robdd_unique_entries,
            robdd_cache_hits: row.robdd_cache_hits,
            robdd_cache_misses: row.robdd_cache_misses,
            monte_carlo_yield: mc.map(|e| e.yield_estimate),
            monte_carlo_std_error: mc.map(|e| e.standard_error),
        });
    }
    maybe_write_json(&json, &rows);
}
