//! The repository's perf harness: runs a **pinned** medium-size design
//! matrix through the parallel sweep engine and emits the
//! machine-readable `BENCH_sweep.json` artifact (per-point wall clocks,
//! totals, node/cache statistics) that seeds the repo's performance
//! trajectory.
//!
//! * `--threads N` — worker pool size (`0` = all cores). All
//!   deterministic fields are bit-identical for every value.
//! * `--compile-threads N` — worker threads *inside* each chunk's
//!   compilation (sharded unique table + work-stealing apply; default 1).
//!   Orthogonal to `--threads`, and likewise bit-identical for every
//!   value — only the lossy op cache's tallies and the `par_*` counters
//!   are scheduling-dependent, which is why CI gates parallel-compile
//!   runs with `anchor_check --volatile-cache-counters`.
//! * `--json <path>` — write the artifact (CI's `perf-smoke` job passes
//!   `BENCH_sweep.json` and gates the deterministic fields against
//!   `tests/fixtures/bench_sweep.json` with `anchor_check`).
//! * `--baseline <path>` — additionally print a per-point
//!   speedup/regression table against a previously saved artifact.
//!
//! The matrix is fixed on purpose, in four blocks sized for a CI smoke
//! job (a few seconds single-threaded, 16 compilation chunks with no
//! chunk dominating, so the speedup is visible at 2–4 threads):
//!
//! 1. **static λ'=1** — all five pinned benchmarks × {w/ml, wv/ml} ×
//!    ε ∈ {1e-2, 1e-3};
//! 2. **dense λ'=2** — the two small benchmarks (the larger ones take
//!    minutes at M = 10, as Table 4 of the paper shows) × the same
//!    specs/ε values;
//! 3. **sifted** — ESEN4x1 under `w/ml+sift` (dynamic sifting is the
//!    costly managed-kernel path; one small instance keeps it honest and
//!    exercises GC accounting without dominating the wall clock);
//! 4. **high-M single chunk** — ESEN4x2 dense (λ'=2, ε=1e-3): one big
//!    compilation that the sweep-level pool cannot parallelise. This is
//!    the point where `--compile-threads` matters — the intra-compile
//!    parallel apply is the only speedup available to it.

use soc_yield_bench::{
    baseline_comparison, parse_cli, summary_line, system_spec, workload_distribution,
    write_json_doc, BenchSweepDoc, CliArgs, Workload,
};
use socy_exec::{NamedDistribution, SweepBlock, SweepMatrix, TruncationRule};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn systems(names: &[&str]) -> Vec<socy_exec::SystemSpec> {
    socy_benchmarks::paper_benchmarks()
        .iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .map(|s| system_spec(s).expect("benchmark weights are valid"))
        .collect()
}

/// The same thinned distribution the table binaries use. All pinned
/// benchmarks share the overall lethality `P_L`, so any representative
/// system yields the block's distribution.
fn lethal(lambda: f64) -> NamedDistribution {
    let system = socy_benchmarks::paper_benchmarks().into_iter().next().expect("non-empty");
    workload_distribution(&Workload { system, lambda }).expect("valid parameters")
}

/// Builds the pinned matrix. Every axis value is part of the fixture
/// contract — changing any of them requires regenerating
/// `tests/fixtures/bench_sweep.json`.
fn pinned_matrix() -> SweepMatrix {
    let static_specs = [
        OrderingSpec::paper_default(),
        OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).expect("valid pair"),
    ];
    let epsilons = [TruncationRule::Epsilon(1e-2), TruncationRule::Epsilon(1e-3)];
    let mut matrix = SweepMatrix::new();

    let mut sparse = SweepBlock::new();
    sparse.systems = systems(&["MS2", "MS4", "ESEN4x1", "ESEN4x2", "ESEN4x4"]);
    sparse.distributions.push(lethal(1.0));
    sparse.specs.extend(static_specs);
    sparse.rules.extend(epsilons);
    matrix.add(sparse);

    let mut dense = SweepBlock::new();
    dense.systems = systems(&["MS2", "ESEN4x1"]);
    dense.distributions.push(lethal(2.0));
    dense.specs.extend(static_specs);
    dense.rules.extend(epsilons);
    matrix.add(dense);

    let mut sifted = SweepBlock::new();
    sifted.systems = systems(&["ESEN4x1"]);
    sifted.distributions.push(lethal(1.0));
    sifted.specs.push(OrderingSpec::paper_default().with_sifting(120));
    sifted.rules.push(TruncationRule::Epsilon(1e-3));
    matrix.add(sifted);

    let mut high_m = SweepBlock::new();
    high_m.systems = systems(&["ESEN4x2"]);
    high_m.distributions.push(lethal(2.0));
    high_m.specs.push(OrderingSpec::paper_default());
    high_m.rules.push(TruncationRule::Epsilon(1e-3));
    matrix.add(high_m);

    matrix
}

fn main() {
    let CliArgs { json, threads, compile_threads, baseline, complement_edges, .. } =
        parse_cli(usize::MAX);
    let mut matrix = pinned_matrix();
    matrix.compile_threads = compile_threads;
    matrix.complement_edges = complement_edges;
    println!(
        "bench_matrix: pinned perf sweep ({} design points, compile-threads {})",
        matrix.len(),
        compile_threads.max(1)
    );
    let outcome = matrix.run(threads);
    let doc = BenchSweepDoc::from_outcome(&outcome);

    println!(
        "{:<10} {:>6} {:>6} {:>10} {:>4} {:>12} {:>10} {:>10} {:>10}",
        "benchmark", "dist", "spec", "rule", "M", "ROBDD peak", "ROMDD", "yield", "seconds"
    );
    for point in &doc.points {
        println!(
            "{:<10} {:>6} {:>6} {:>10} {:>4} {:>12} {:>10} {:>10.6} {:>10.6}",
            point.benchmark,
            point.distribution,
            point.ordering,
            point.rule,
            point.truncation,
            point.robdd_peak,
            point.romdd_size,
            point.yield_lower_bound,
            point.seconds,
        );
    }
    for worker in &outcome.summary.workers {
        eprintln!(
            "worker {}: {} chunks, {} points, busy {:.3} s",
            worker.worker,
            worker.chunks,
            worker.points,
            worker.busy.as_secs_f64()
        );
    }
    println!(
        "{} · compile {:.3} s · robdd cache hit {:.1}% evict {:.1}% · gc runs {}",
        summary_line(&outcome.summary),
        outcome.summary.compile_time.as_secs_f64(),
        outcome.summary.robdd.cache_hit_percent(),
        outcome.summary.robdd.cache_evict_percent(),
        outcome.summary.robdd.gc_runs,
    );
    if outcome.summary.compile_threads > 1 {
        println!(
            "parallel compile: {} sections · {} tasks · {} steals · {} shard-lock contentions",
            doc.totals.par_sections,
            doc.totals.par_tasks,
            doc.totals.par_steals,
            doc.totals.par_shard_contention,
        );
    }
    // Write the artifact even when points failed: CI's `if: always()`
    // upload step and local debugging both want the partial results.
    if let Some(path) = &json {
        match write_json_doc(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if outcome.summary.failed_points > 0 {
        for point in &outcome.points {
            if let Err(e) = &point.result {
                eprintln!("FAILED {e}");
            }
        }
        eprintln!("{} design point(s) failed", outcome.summary.failed_points);
        std::process::exit(1);
    }

    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        match baseline_comparison(&text, &doc) {
            Ok(table) => print!("{table}"),
            Err(e) => {
                eprintln!("baseline comparison failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
