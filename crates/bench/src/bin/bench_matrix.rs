//! The repository's perf harness: runs a **pinned** medium-size design
//! matrix through the parallel sweep engine and emits the
//! machine-readable `BENCH_sweep.json` artifact (per-point wall clocks,
//! totals, node/cache statistics) that seeds the repo's performance
//! trajectory.
//!
//! * `--threads N` — worker pool size (`0` = all cores). All
//!   deterministic fields are bit-identical for every value.
//! * `--compile-threads N` — worker threads *inside* each chunk's
//!   compilation (sharded unique table + work-stealing apply; default 1).
//!   Orthogonal to `--threads`, and likewise bit-identical for every
//!   value — only the lossy op cache's tallies and the `par_*` counters
//!   are scheduling-dependent, which is why CI gates parallel-compile
//!   runs with `anchor_check --volatile-cache-counters`.
//! * `--json <path>` — write the artifact (CI's `perf-smoke` job passes
//!   `BENCH_sweep.json` and gates the deterministic fields against
//!   `tests/fixtures/bench_sweep.json` with `anchor_check`).
//! * `--baseline <path>` — additionally print a per-point
//!   speedup/regression table against a previously saved artifact.
//! * `--scratch-deltas` — materialize the what-if block's variants as
//!   standalone systems (one full compilation each) instead of the
//!   incremental delta path; used by CI's delta-equivalence gate.
//!
//! The matrix is fixed on purpose, in five blocks sized for a CI smoke
//! job (a few seconds single-threaded, 16 compilation chunks with no
//! chunk dominating, so the speedup is visible at 2–4 threads):
//!
//! 1. **static λ'=1** — all five pinned benchmarks × {w/ml, wv/ml} ×
//!    ε ∈ {1e-2, 1e-3};
//! 2. **dense λ'=2** — the two small benchmarks (the larger ones take
//!    minutes at M = 10, as Table 4 of the paper shows) × the same
//!    specs/ε values;
//! 3. **sifted** — ESEN4x1 under `w/ml+sift` (dynamic sifting is the
//!    costly managed-kernel path; one small instance keeps it honest and
//!    exercises GC accounting without dominating the wall clock);
//! 4. **high-M single chunk** — ESEN4x2 dense (λ'=2, ε=1e-3): one big
//!    compilation that the sweep-level pool cannot parallelise. This is
//!    the point where `--compile-threads` matters — the intra-compile
//!    parallel apply is the only speedup available to it.
//! 5. **what-if deltas** — ESEN4x1 plus a family of nine one-component
//!    what-if variants (the unchanged base, four half-probability and
//!    four immune components), evaluated through the incremental
//!    [`Pipeline::sweep_deltas`](soc_yield_core::Pipeline::sweep_deltas)
//!    path: the base compiles once and every variant re-evaluates on the
//!    resident diagram. `--scratch-deltas` materializes each variant as
//!    its own standalone system instead (one full compile per variant,
//!    identical folded point labels); CI gates the two runs against each
//!    other with `anchor_check --delta-equivalence`, proving the delta
//!    path bit-identical to from-scratch compilation — and the recorded
//!    wall-clock ratio of the block is the measured what-if speedup.

use soc_yield_bench::{
    baseline_comparison, parse_cli, summary_line, system_spec, workload_distribution,
    write_json_doc, BenchSweepDoc, CliArgs, Workload, EPSILON,
};
use soc_yield_core::SystemDelta;
use socy_exec::{NamedDistribution, SweepBlock, SweepMatrix, SystemSpec, TruncationRule};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn systems(names: &[&str]) -> Vec<socy_exec::SystemSpec> {
    socy_benchmarks::paper_benchmarks()
        .iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .map(|s| system_spec(s).expect("benchmark weights are valid"))
        .collect()
}

/// The same thinned distribution the table binaries use. All pinned
/// benchmarks share the overall lethality `P_L`, so any representative
/// system yields the block's distribution.
fn lethal(lambda: f64) -> NamedDistribution {
    let system = socy_benchmarks::paper_benchmarks().into_iter().next().expect("non-empty");
    workload_distribution(&Workload { system, lambda }).expect("valid parameters")
}

/// The pinned what-if family: the unchanged base plus eight
/// one-component variants (four halved probabilities, four immune
/// components). Overrides only ever *lower* `P_i`, so the total raw
/// mass stays valid for every variant.
fn delta_family(base: &SystemSpec) -> Vec<SystemDelta> {
    let mut deltas = vec![SystemDelta::named("base")];
    for i in 0..4 {
        deltas.push(
            SystemDelta::named(format!("x{i}-half"))
                .with_component_probability(i, base.components.raw(i) / 2.0),
        );
    }
    for i in 4..8 {
        deltas.push(SystemDelta::named(format!("x{i}-immune")).with_component_probability(i, 0.0));
    }
    deltas
}

/// Builds the pinned matrix. Every axis value is part of the fixture
/// contract — changing any of them requires regenerating
/// `tests/fixtures/bench_sweep.json`.
///
/// With `scratch_deltas` the what-if block is replaced by one holding a
/// standalone materialized system per variant — identical folded point
/// labels, one full compilation each instead of one shared base.
fn pinned_matrix(scratch_deltas: bool) -> SweepMatrix {
    let static_specs = [
        OrderingSpec::paper_default(),
        OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).expect("valid pair"),
    ];
    let epsilons = [TruncationRule::Epsilon(1e-2), TruncationRule::Epsilon(1e-3)];
    let mut matrix = SweepMatrix::new();

    let mut sparse = SweepBlock::new();
    sparse.systems = systems(&["MS2", "MS4", "ESEN4x1", "ESEN4x2", "ESEN4x4"]);
    sparse.distributions.push(lethal(1.0));
    sparse.specs.extend(static_specs);
    sparse.rules.extend(epsilons);
    matrix.add(sparse);

    let mut dense = SweepBlock::new();
    dense.systems = systems(&["MS2", "ESEN4x1"]);
    dense.distributions.push(lethal(2.0));
    dense.specs.extend(static_specs);
    dense.rules.extend(epsilons);
    matrix.add(dense);

    let mut sifted = SweepBlock::new();
    sifted.systems = systems(&["ESEN4x1"]);
    sifted.distributions.push(lethal(1.0));
    sifted.specs.push(OrderingSpec::paper_default().with_sifting(120));
    sifted.rules.push(TruncationRule::Epsilon(1e-3));
    matrix.add(sifted);

    let mut high_m = SweepBlock::new();
    high_m.systems = systems(&["ESEN4x2"]);
    high_m.distributions.push(lethal(2.0));
    high_m.specs.push(OrderingSpec::paper_default());
    high_m.rules.push(TruncationRule::Epsilon(1e-3));
    matrix.add(high_m);

    let mut what_if = SweepBlock::new();
    let base = systems(&["ESEN4x1"]).pop().expect("pinned benchmark exists");
    let deltas = delta_family(&base);
    if scratch_deltas {
        what_if.systems = deltas
            .iter()
            .map(|delta| {
                let (fault_tree, components) = delta
                    .materialize(&base.fault_tree, &base.components)
                    .expect("pinned deltas are valid");
                // Named like the folded delta points so `anchor_check
                // --delta-equivalence` can line the two runs up.
                SystemSpec::new(format!("{}·Δ{}", base.name, delta.name()), fault_tree, components)
            })
            .collect();
    } else {
        what_if.systems.push(base);
        what_if.deltas = deltas;
    }
    what_if.distributions.push(lethal(1.0));
    what_if.specs.push(OrderingSpec::paper_default());
    what_if.rules.push(TruncationRule::Epsilon(EPSILON));
    matrix.add(what_if);

    matrix
}

fn main() {
    let CliArgs { json, threads, options, baseline, scratch_deltas, .. } = parse_cli(usize::MAX);
    let mut matrix = pinned_matrix(scratch_deltas);
    matrix.options = options;
    println!(
        "bench_matrix: pinned perf sweep ({} design points, compile-threads {})",
        matrix.len(),
        options.compile_threads().max(1)
    );
    let outcome = matrix.run(threads);
    let doc = BenchSweepDoc::from_outcome(&outcome);

    println!(
        "{:<10} {:>6} {:>6} {:>10} {:>4} {:>12} {:>10} {:>10} {:>10}",
        "benchmark", "dist", "spec", "rule", "M", "ROBDD peak", "ROMDD", "yield", "seconds"
    );
    for point in &doc.points {
        println!(
            "{:<10} {:>6} {:>6} {:>10} {:>4} {:>12} {:>10} {:>10.6} {:>10.6}",
            point.benchmark,
            point.distribution,
            point.ordering,
            point.rule,
            point.truncation,
            point.robdd_peak,
            point.romdd_size,
            point.yield_lower_bound,
            point.seconds,
        );
    }
    for worker in &outcome.summary.workers {
        eprintln!(
            "worker {}: {} chunks, {} points, busy {:.3} s",
            worker.worker,
            worker.chunks,
            worker.points,
            worker.busy.as_secs_f64()
        );
    }
    println!(
        "{} · compile {:.3} s · robdd cache hit {:.1}% evict {:.1}% · gc runs {}",
        summary_line(&outcome.summary),
        outcome.summary.compile_time.as_secs_f64(),
        outcome.summary.robdd.cache_hit_percent(),
        outcome.summary.robdd.cache_evict_percent(),
        outcome.summary.robdd.gc_runs,
    );
    if outcome.summary.compile_threads > 1 {
        println!(
            "parallel compile: {} sections · {} tasks · {} steals · {} shard-lock contentions",
            doc.totals.par_sections,
            doc.totals.par_tasks,
            doc.totals.par_steals,
            doc.totals.par_shard_contention,
        );
    }
    // Write the artifact even when points failed: CI's `if: always()`
    // upload step and local debugging both want the partial results.
    if let Some(path) = &json {
        match write_json_doc(path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if outcome.summary.failed_points > 0 {
        for point in &outcome.points {
            if let Err(e) = &point.result {
                eprintln!("FAILED {e}");
            }
        }
        eprintln!("{} design point(s) failed", outcome.summary.failed_points);
        std::process::exit(1);
    }

    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        match baseline_comparison(&text, &doc) {
            Ok(table) => print!("{table}"),
            Err(e) => {
                eprintln!("baseline comparison failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
