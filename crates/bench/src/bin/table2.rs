//! Reproduces Table 2: ROMDD size (number of nodes) under the seven
//! multiple-valued variable orderings wv, wvr, vw, vrw, t, w, h
//! (bit groups ordered most-significant-first throughout).
//!
//! The `vw` / `vrw` orderings blow up quickly (the paper reports failures
//! on the larger instances). Every cell is attempted; pass
//! `--node-budget N` (and/or `--deadline-ms MS`) to bound each
//! compilation — a cell whose governed compile trips its budget degrades
//! to a deterministic Monte-Carlo confidence interval instead of
//! exhausting memory, printed as `bounds` and dumped with
//! `fidelity: "bounds"` (where the paper prints "—", this prints an
//! answer with an honest error bar). All cells are evaluated through the
//! parallel sweep engine; `--threads N` sizes its worker pool without
//! changing a single number.

use soc_yield_bench::{
    bounds_row, maybe_write_json, paper_workloads, parse_cli, run_table, summary_line, CliArgs,
    ResultRow, Workload,
};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn main() {
    let CliArgs { max_components, json, threads, options, .. } = parse_cli(30);
    println!("Table 2: ROMDD size per multiple-valued variable ordering (group order: ml)");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "wv", "wvr", "vw", "vrw", "t", "w", "h"
    );
    let cells: Vec<(Workload, Vec<OrderingSpec>)> = paper_workloads(max_components)
        .into_iter()
        .map(|workload| {
            let specs = MvOrdering::ALL
                .iter()
                .map(|&mv| {
                    OrderingSpec::new(mv, GroupOrdering::MsbFirst).expect("ml combines with all")
                })
                .collect();
            (workload, specs)
        })
        .collect();
    let outcome = match run_table(&cells, threads, options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("table 2 failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows: Vec<ResultRow> = Vec::new();
    for ((workload, specs), results) in cells.iter().zip(&outcome.cells) {
        let mut sizes = Vec::new();
        for (spec, result) in specs.iter().zip(results) {
            match result {
                Ok(report) => {
                    sizes.push(report.romdd_size.to_string());
                    rows.push(ResultRow::from_report(workload, report));
                }
                // A tripped resource budget degrades to Monte-Carlo
                // bounds: the cell still answers, with fidelity "bounds".
                Err(e) if e.resource => match bounds_row(workload, *spec) {
                    Ok(row) => {
                        sizes.push("bounds".to_string());
                        rows.push(row);
                    }
                    Err(fallback) => {
                        eprintln!("{}: {e}; bounds fallback failed: {fallback}", workload.label());
                        sizes.push("-".to_string());
                    }
                },
                Err(e) => {
                    eprintln!("{}: {e}", workload.label());
                    sizes.push("-".to_string());
                }
            }
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            workload.label(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            sizes[5],
            sizes[6]
        );
    }
    eprintln!("({})", summary_line(&outcome.summary));
    maybe_write_json(&json, &rows);
}
