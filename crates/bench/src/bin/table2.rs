//! Reproduces Table 2: ROMDD size (number of nodes) under the seven
//! multiple-valued variable orderings wv, wvr, vw, vrw, t, w, h
//! (bit groups ordered most-significant-first throughout).
//!
//! The `vw` / `vrw` orderings blow up quickly (the paper reports failures
//! on the larger instances); by default this binary therefore only runs
//! instances up to 30 components — pass `--max-components 100` to attempt
//! them all. All cells are evaluated through the parallel sweep engine;
//! `--threads N` sizes its worker pool without changing a single number.

use soc_yield_bench::{
    maybe_write_json, paper_workloads, parse_cli, run_table, summary_line, CliArgs, ResultRow,
    Workload,
};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn main() {
    let CliArgs { max_components, json, v_first_max, threads, options, .. } = parse_cli(30);
    println!("Table 2: ROMDD size per multiple-valued variable ordering (group order: ml)");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "wv", "wvr", "vw", "vrw", "t", "w", "h"
    );
    // The v-first orderings explode on the larger instances; skip them
    // there (mirrors the paper's "—" entries) instead of exhausting
    // memory.
    let attempted = |mv: MvOrdering, workload: &Workload| {
        !(matches!(mv, MvOrdering::Vw | MvOrdering::Vrw)
            && workload.system.num_components() > v_first_max)
    };
    let cells: Vec<(Workload, Vec<OrderingSpec>)> = paper_workloads(max_components)
        .into_iter()
        .map(|workload| {
            let specs = MvOrdering::ALL
                .iter()
                .filter(|&&mv| attempted(mv, &workload))
                .map(|&mv| {
                    OrderingSpec::new(mv, GroupOrdering::MsbFirst).expect("ml combines with all")
                })
                .collect();
            (workload, specs)
        })
        .collect();
    let outcome = match run_table(&cells, threads, options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("table 2 failed: {e}");
            std::process::exit(1);
        }
    };
    let mut rows: Vec<ResultRow> = Vec::new();
    for ((workload, _), results) in cells.iter().zip(&outcome.cells) {
        let mut results = results.iter();
        let mut sizes = Vec::new();
        for mv in MvOrdering::ALL {
            if !attempted(mv, workload) {
                sizes.push("-".to_string());
                continue;
            }
            match results.next().expect("one result per attempted spec") {
                Ok(report) => {
                    sizes.push(report.romdd_size.to_string());
                    rows.push(ResultRow::from_report(workload, report));
                }
                Err(e) => {
                    eprintln!("{}: {e}", workload.label());
                    sizes.push("-".to_string());
                }
            }
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            workload.label(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            sizes[5],
            sizes[6]
        );
    }
    eprintln!("({})", summary_line(&outcome.summary));
    maybe_write_json(&json, &rows);
}
