//! Reproduces Table 2: ROMDD size (number of nodes) under the seven
//! multiple-valued variable orderings wv, wvr, vw, vrw, t, w, h
//! (bit groups ordered most-significant-first throughout).
//!
//! The `vw` / `vrw` orderings blow up quickly (the paper reports failures
//! on the larger instances); by default this binary therefore only runs
//! instances up to 30 components — pass `--max-components 100` to attempt
//! them all.

use soc_yield_bench::{maybe_write_json, paper_workloads, parse_cli, CliArgs, ResultRow, Runner};
use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec};

fn main() {
    let CliArgs { max_components, json, v_first_max } = parse_cli(30);
    println!("Table 2: ROMDD size per multiple-valued variable ordering (group order: ml)");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "wv", "wvr", "vw", "vrw", "t", "w", "h"
    );
    let mut rows: Vec<ResultRow> = Vec::new();
    let mut runner = Runner::new();
    for workload in paper_workloads(max_components) {
        let mut sizes = Vec::new();
        for mv in MvOrdering::ALL {
            let spec =
                OrderingSpec::new(mv, GroupOrdering::MsbFirst).expect("ml combines with all");
            // The v-first orderings explode on the larger instances; skip them there
            // (mirrors the paper's "—" entries) instead of exhausting memory.
            let skip = matches!(mv, MvOrdering::Vw | MvOrdering::Vrw)
                && workload.system.num_components() > v_first_max;
            if skip {
                sizes.push("-".to_string());
                continue;
            }
            match runner.run(&workload, spec) {
                Ok(row) => {
                    sizes.push(row.romdd_size.to_string());
                    rows.push(row);
                }
                Err(e) => {
                    eprintln!("{}: {spec} failed: {e}", workload.label());
                    sizes.push("-".to_string());
                }
            }
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            workload.label(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            sizes[5],
            sizes[6]
        );
    }
    maybe_write_json(&json, &rows);
}
