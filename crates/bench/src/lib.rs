//! Experiment harness reproducing the paper's tables.
//!
//! The binaries in `src/bin/` regenerate the evaluation section:
//!
//! * `table1` — benchmark inventory (components, gates);
//! * `table2` — ROMDD sizes under the seven multiple-valued variable
//!   orderings;
//! * `table3` — coded-ROBDD sizes under the `ml` / `lm` / `w` bit-group
//!   orderings;
//! * `table4` — full pipeline metrics (CPU time, ROBDD peak, ROBDD size,
//!   ROMDD size, yield) with the `w` + `ml` heuristics, cross-checked
//!   against the Monte-Carlo simulator on the smaller instances.
//!
//! Every binary accepts `--max-components <C>` to bound the instance sizes
//! (the larger paper instances need several minutes and a few GiB of RAM,
//! exactly as the original did on a Sun-Blade-1000), and `--json <path>`
//! to additionally dump machine-readable rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use serde::Serialize;

use soc_yield_core::{AnalysisOptions, CoreError, Pipeline, YieldReport};
use socy_benchmarks::BenchmarkSystem;
use socy_defect::{DefectError, NegativeBinomial};
use socy_ordering::OrderingSpec;

/// Clustering parameter `α` used by all experiments. The paper's value is
/// unreadable in the scanned text; `α = 4` together with `ε = 1e-3`
/// reproduces the truncation points it reports (M = 6 for λ' = 1 and
/// M = 10 for λ' = 2) — see DESIGN.md.
pub const ALPHA: f64 = 4.0;
/// Error requirement `ε` used by all experiments (see [`ALPHA`]).
pub const EPSILON: f64 = 1e-3;
/// Overall lethality `P_L` (the paper uses 1, so `λ' = λ`).
pub const LETHALITY: f64 = 1.0;
/// The two expected lethal-defect counts evaluated by the paper.
pub const LAMBDAS: [f64; 2] = [1.0, 2.0];

/// One experiment configuration: a benchmark instance and an expected
/// number of lethal defects.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark system.
    pub system: BenchmarkSystem,
    /// Expected number of lethal defects `λ'`.
    pub lambda: f64,
}

impl Workload {
    /// Label used by the tables, e.g. `MS4, λ'=1`.
    pub fn label(&self) -> String {
        format!("{}, λ'={}", self.system.name, self.lambda)
    }
}

/// The workload list of Tables 2–4: every benchmark at `λ' = 1`, plus the
/// smaller instances at `λ' = 2` (the paper, too, only reports the larger
/// instances for the moderate defect density).
pub fn paper_workloads(max_components: usize) -> Vec<Workload> {
    let mut workloads = Vec::new();
    for system in socy_benchmarks::paper_benchmarks() {
        if system.num_components() <= max_components {
            workloads.push(Workload { system: system.clone(), lambda: 1.0 });
        }
    }
    for system in socy_benchmarks::paper_benchmarks() {
        let small_enough =
            matches!(system.name.as_str(), "MS2" | "MS4" | "ESEN4x1" | "ESEN4x2" | "ESEN4x4");
        if small_enough && system.num_components() <= max_components {
            workloads.push(Workload { system, lambda: 2.0 });
        }
    }
    workloads
}

/// A machine-readable result row (serialised by `--json`).
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Expected number of lethal defects.
    pub lambda: f64,
    /// Ordering specification label (`mv/group`).
    pub ordering: String,
    /// Truncation point `M`.
    pub truncation: usize,
    /// Number of components.
    pub components: usize,
    /// Gates in the fault tree `F`.
    pub fault_tree_gates: usize,
    /// Gates in the binary-logic description of `G`.
    pub g_gates: usize,
    /// Coded-ROBDD size (reachable nodes).
    pub robdd_size: usize,
    /// Peak ROBDD nodes during construction.
    pub robdd_peak: usize,
    /// ROMDD size (reachable nodes).
    pub romdd_size: usize,
    /// Yield lower bound `Y_M`.
    pub yield_lower_bound: f64,
    /// Guaranteed absolute error bound.
    pub error_bound: f64,
    /// Entries in the ROBDD manager's unique table after the build.
    pub robdd_unique_entries: usize,
    /// ROBDD operation-cache hits during the build.
    pub robdd_cache_hits: u64,
    /// ROBDD operation-cache misses during the build.
    pub robdd_cache_misses: u64,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl ResultRow {
    /// Builds a row from a workload and a finished report.
    pub fn from_report(workload: &Workload, report: &YieldReport) -> Self {
        Self {
            benchmark: workload.system.name.clone(),
            lambda: workload.lambda,
            ordering: report.spec.label(),
            truncation: report.truncation,
            components: report.num_components,
            fault_tree_gates: workload.system.num_gates(),
            g_gates: report.g_gates,
            robdd_size: report.coded_robdd_size,
            robdd_peak: report.robdd_peak,
            romdd_size: report.romdd_size,
            yield_lower_bound: report.yield_lower_bound,
            error_bound: report.error_bound,
            robdd_unique_entries: report.robdd_stats.unique_entries,
            robdd_cache_hits: report.robdd_stats.op_cache_hits,
            robdd_cache_misses: report.robdd_stats.op_cache_misses,
            seconds: report.total_time.as_secs_f64(),
        }
    }
}

/// Errors surfaced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// The analysis itself failed.
    Core(CoreError),
    /// The defect model could not be constructed.
    Defect(DefectError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Core(e) => write!(f, "{e}"),
            HarnessError::Defect(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CoreError> for HarnessError {
    fn from(e: CoreError) -> Self {
        HarnessError::Core(e)
    }
}

impl From<DefectError> for HarnessError {
    fn from(e: DefectError) -> Self {
        HarnessError::Defect(e)
    }
}

/// A harness that keeps the [`Pipeline`] of the benchmark system it is
/// currently working on, so consecutive evaluations of the same system
/// (another ordering spec, another λ' whose truncation a compiled diagram
/// already covers) skip the truncate/encode/order/compile/convert chain.
///
/// A diagram is reused only when it covers the requested truncation at
/// the same ordering spec; the shipped tables iterate λ' in ascending
/// order, so every printed row reports the sizes of a diagram compiled
/// at exactly that row's truncation, as the paper's tables do. Moving on
/// to a different system drops the previous system's pipeline, so a long
/// table run never accumulates every diagram it ever built.
#[derive(Debug, Default)]
pub struct Runner {
    current: Option<(String, Pipeline)>,
}

impl Runner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one workload under one ordering spec, reusing the pipeline of
    /// the previous call when it was for the same system, and returns the
    /// full [`YieldReport`].
    ///
    /// # Errors
    ///
    /// Propagates analysis or defect-model construction failures.
    pub fn run_report(
        &mut self,
        workload: &Workload,
        spec: OrderingSpec,
    ) -> Result<YieldReport, HarnessError> {
        let components = workload.system.component_probabilities(LETHALITY)?;
        let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA)?;
        let lethal = raw.thinned(components.lethality())?;
        let options = AnalysisOptions { epsilon: EPSILON, spec, ..AnalysisOptions::default() };
        let name = &workload.system.name;
        if self.current.as_ref().is_none_or(|(n, _)| n != name) {
            let pipeline = Pipeline::new(&workload.system.fault_tree, &components)?;
            self.current = Some((name.clone(), pipeline));
        }
        let (_, pipeline) = self.current.as_mut().expect("pipeline was just ensured");
        Ok(pipeline.evaluate(&lethal, &options)?)
    }

    /// Like [`Runner::run_report`], condensed into a table [`ResultRow`].
    ///
    /// # Errors
    ///
    /// Propagates analysis or defect-model construction failures.
    pub fn run(
        &mut self,
        workload: &Workload,
        spec: OrderingSpec,
    ) -> Result<ResultRow, HarnessError> {
        let report = self.run_report(workload, spec)?;
        Ok(ResultRow::from_report(workload, &report))
    }
}

/// Runs the full pipeline for one workload under one ordering spec
/// (one-shot; tables iterating many points should share a [`Runner`]).
///
/// # Errors
///
/// Propagates analysis or defect-model construction failures.
pub fn run_workload(workload: &Workload, spec: OrderingSpec) -> Result<ResultRow, HarnessError> {
    Runner::new().run(workload, spec)
}

/// Formats a duration as seconds with two decimals (Table 4 style).
pub fn fmt_seconds(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Common CLI options of the table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Skip instances with more components than this.
    pub max_components: usize,
    /// Optional path for a machine-readable JSON dump of the rows.
    pub json: Option<String>,
    /// Largest instance (in components) for which the exploding v-first
    /// orderings `vw` / `vrw` are attempted (`table2` only). They take
    /// minutes and gigabytes beyond small instances — exactly the "—"
    /// entries of the paper — so CI passes 0 here.
    pub v_first_max: usize,
}

/// Parses the common CLI flags of the table binaries:
/// `--max-components <C>`, `--json <path>` and `--v-first-max <C>`.
pub fn parse_cli(default_max: usize) -> CliArgs {
    let mut parsed = CliArgs { max_components: default_max, json: None, v_first_max: 30 };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-components" if i + 1 < args.len() => {
                parsed.max_components = args[i + 1].parse().unwrap_or(default_max);
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                parsed.json = Some(args[i + 1].clone());
                i += 2;
            }
            "--v-first-max" if i + 1 < args.len() => {
                parsed.v_first_max = args[i + 1].parse().unwrap_or(parsed.v_first_max);
                i += 2;
            }
            _ => {
                eprintln!("ignoring unknown argument `{}`", args[i]);
                i += 1;
            }
        }
    }
    parsed
}

/// Normalizes an anchor JSON dump for comparison: volatile wall-clock
/// fields (`"seconds": …`) are dropped, everything else — node counts,
/// peaks, yields, cache statistics — must match bit-for-bit.
pub fn normalize_anchor_json(text: &str) -> Vec<String> {
    text.lines()
        .filter(|line| !line.trim_start().starts_with("\"seconds\":"))
        .map(|line| line.trim_end().to_string())
        .collect()
}

/// Diffs two anchor JSON dumps after normalization. Returns `None` when
/// they agree and a human-readable description of the first divergence
/// otherwise.
pub fn diff_anchors(fixture: &str, actual: &str) -> Option<String> {
    let fixture = normalize_anchor_json(fixture);
    let actual = normalize_anchor_json(actual);
    for (i, (f, a)) in fixture.iter().zip(&actual).enumerate() {
        if f != a {
            return Some(format!(
                "first divergence at normalized line {}:\n  fixture: {}\n  actual:  {}",
                i + 1,
                f,
                a
            ));
        }
    }
    if fixture.len() != actual.len() {
        return Some(format!(
            "row count drift: fixture has {} normalized lines, actual has {}",
            fixture.len(),
            actual.len()
        ));
    }
    None
}

/// Writes rows as pretty-printed JSON to `path` when requested.
pub fn maybe_write_json<T: Serialize>(path: &Option<String>, rows: &[T]) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("could not serialise results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_list_respects_component_bound() {
        let all = paper_workloads(usize::MAX);
        assert!(all.len() >= 11);
        let small = paper_workloads(20);
        assert!(small.iter().all(|w| w.system.num_components() <= 20));
        assert!(small.iter().any(|w| w.lambda == 2.0));
        assert!(!small.is_empty());
        assert!(small[0].label().contains("λ'"));
    }

    #[test]
    fn run_workload_on_smallest_instance() {
        let workload = Workload { system: socy_benchmarks::esen(4, 1), lambda: 1.0 };
        let row = run_workload(&workload, OrderingSpec::paper_default()).unwrap();
        assert_eq!(row.components, 14);
        assert!(row.yield_lower_bound > 0.5 && row.yield_lower_bound < 1.0);
        assert!(row.error_bound <= EPSILON);
        assert!(row.robdd_size > row.romdd_size);
        assert!(row.robdd_unique_entries > 0);
        assert!(row.robdd_cache_misses > 0);
        assert!(row.seconds >= 0.0);
    }

    #[test]
    fn runner_reuses_pipelines_across_lambdas() {
        let mut runner = Runner::new();
        let system = socy_benchmarks::esen(4, 1);
        let spec = OrderingSpec::paper_default();
        let one = runner.run(&Workload { system: system.clone(), lambda: 2.0 }, spec).unwrap();
        let two = runner.run(&Workload { system: system.clone(), lambda: 1.0 }, spec).unwrap();
        // λ' = 2 compiled at M = 10; the λ' = 1 point reuses that diagram.
        assert!(one.truncation > two.truncation);
        assert!(two.yield_lower_bound > one.yield_lower_bound);
        // Switching systems evicts the previous pipeline (bounded memory).
        let other = socy_benchmarks::ms(2);
        let _ = runner.run(&Workload { system: other, lambda: 1.0 }, spec).unwrap();
        assert_eq!(runner.current.as_ref().unwrap().0, "MS2");
        // Coming back to the first system recompiles and still agrees.
        let again = runner.run(&Workload { system, lambda: 1.0 }, spec).unwrap();
        assert_eq!(again.yield_lower_bound, two.yield_lower_bound);
    }

    #[test]
    fn cli_helpers() {
        assert_eq!(fmt_seconds(Duration::from_millis(1234)), "1.23");
        // maybe_write_json with None is a no-op.
        maybe_write_json::<ResultRow>(&None, &[]);
    }

    #[test]
    fn anchor_diff_ignores_wall_clock_but_nothing_else() {
        let fixture = "[\n  {\n    \"robdd_size\": 9897,\n    \"seconds\": 0.004,\n    \"yield_lower_bound\": 0.8528030506125002\n  }\n]";
        let same_but_slower = "[\n  {\n    \"robdd_size\": 9897,\n    \"seconds\": 7.5,\n    \"yield_lower_bound\": 0.8528030506125002\n  }\n]";
        assert_eq!(diff_anchors(fixture, same_but_slower), None);
        let drifted = same_but_slower.replace("9897", "9898");
        let report = diff_anchors(fixture, &drifted).expect("size drift must be caught");
        assert!(report.contains("9897") && report.contains("9898"));
        let truncated = "[\n  {\n    \"robdd_size\": 9897\n  }\n]";
        let report = diff_anchors(fixture, truncated).expect("missing rows must be caught");
        assert!(!report.is_empty());
        // The last-ulp of the yield is part of the contract.
        let ulp = same_but_slower.replace("0.8528030506125002", "0.8528030506125001");
        assert!(diff_anchors(fixture, &ulp).is_some());
    }
}
