//! Experiment harness reproducing the paper's tables.
//!
//! The binaries in `src/bin/` regenerate the evaluation section:
//!
//! * `table1` — benchmark inventory (components, gates);
//! * `table2` — ROMDD sizes under the seven multiple-valued variable
//!   orderings;
//! * `table3` — coded-ROBDD sizes under the `ml` / `lm` / `w` bit-group
//!   orderings;
//! * `table4` — full pipeline metrics (CPU time, ROBDD peak, ROBDD size,
//!   ROMDD size, yield) with the `w` + `ml` heuristics, cross-checked
//!   against the Monte-Carlo simulator on the smaller instances;
//! * `sift_compare` — static orderings vs dynamic group sifting;
//! * `bench_matrix` — the pinned perf matrix behind the repo's
//!   `BENCH_sweep.json` trajectory artifact ([`BenchSweepDoc`]);
//! * `anchor_check` — the CI gate diffing fresh JSON dumps against the
//!   pinned fixtures ([`diff_anchors`]).
//!
//! Every binary accepts `--max-components <C>` to bound the instance sizes
//! (the larger paper instances need several minutes and a few GiB of RAM,
//! exactly as the original did on a Sun-Blade-1000), `--json <path>`
//! to additionally dump machine-readable rows, and `--threads <N>` to
//! size the parallel sweep engine's worker pool ([`run_table`]; results
//! are bit-identical for every thread count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use serde::Serialize;

use soc_yield_core::{
    AnalysisOptions, CompileOptions, CoreError, DegradeLadder, Pipeline, YieldReport,
};
use socy_benchmarks::BenchmarkSystem;
use socy_defect::{DefectError, NegativeBinomial};
use socy_exec::{
    NamedDistribution, PipelineLru, SweepBlock, SweepError, SweepMatrix, SweepOutcome,
    SweepSummary, SystemSpec, TruncationRule,
};
use socy_ordering::OrderingSpec;

/// Clustering parameter `α` used by all experiments. The paper's value is
/// unreadable in the scanned text; `α = 4` together with `ε = 1e-3`
/// reproduces the truncation points it reports (M = 6 for λ' = 1 and
/// M = 10 for λ' = 2) — see DESIGN.md.
pub const ALPHA: f64 = 4.0;
/// Error requirement `ε` used by all experiments (see [`ALPHA`]).
pub const EPSILON: f64 = 1e-3;
/// Overall lethality `P_L` (the paper uses 1, so `λ' = λ`).
pub const LETHALITY: f64 = 1.0;
/// The two expected lethal-defect counts evaluated by the paper.
pub const LAMBDAS: [f64; 2] = [1.0, 2.0];

/// One experiment configuration: a benchmark instance and an expected
/// number of lethal defects.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark system.
    pub system: BenchmarkSystem,
    /// Expected number of lethal defects `λ'`.
    pub lambda: f64,
}

impl Workload {
    /// Label used by the tables, e.g. `MS4, λ'=1`.
    pub fn label(&self) -> String {
        format!("{}, λ'={}", self.system.name, self.lambda)
    }
}

/// The workload list of Tables 2–4: every benchmark at `λ' = 1`, plus the
/// smaller instances at `λ' = 2` (the paper, too, only reports the larger
/// instances for the moderate defect density).
pub fn paper_workloads(max_components: usize) -> Vec<Workload> {
    let mut workloads = Vec::new();
    for system in socy_benchmarks::paper_benchmarks() {
        if system.num_components() <= max_components {
            workloads.push(Workload { system: system.clone(), lambda: 1.0 });
        }
    }
    for system in socy_benchmarks::paper_benchmarks() {
        let small_enough =
            matches!(system.name.as_str(), "MS2" | "MS4" | "ESEN4x1" | "ESEN4x2" | "ESEN4x4");
        if small_enough && system.num_components() <= max_components {
            workloads.push(Workload { system, lambda: 2.0 });
        }
    }
    workloads
}

/// A machine-readable result row (serialised by `--json`).
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Expected number of lethal defects.
    pub lambda: f64,
    /// Ordering specification label (`mv/group`).
    pub ordering: String,
    /// Truncation point `M`.
    pub truncation: usize,
    /// Number of components.
    pub components: usize,
    /// Gates in the fault tree `F`.
    pub fault_tree_gates: usize,
    /// Gates in the binary-logic description of `G`.
    pub g_gates: usize,
    /// Coded-ROBDD size (reachable nodes).
    pub robdd_size: usize,
    /// Peak ROBDD nodes during construction.
    pub robdd_peak: usize,
    /// ROMDD size (reachable nodes).
    pub romdd_size: usize,
    /// Yield lower bound `Y_M`.
    pub yield_lower_bound: f64,
    /// Guaranteed absolute error bound.
    pub error_bound: f64,
    /// Fidelity of this row's answer: `exact` for a compiled evaluation,
    /// `bounds` for a Monte-Carlo confidence interval produced when the
    /// governed compilation tripped its resource budget (then
    /// `yield_lower_bound` is the lower CI bound, `error_bound` the CI
    /// width, and the diagram-size fields are zero).
    pub fidelity: String,
    /// Entries in the ROBDD manager's unique table after the build.
    pub robdd_unique_entries: usize,
    /// ROBDD operation-cache hits during the build.
    pub robdd_cache_hits: u64,
    /// ROBDD operation-cache misses during the build.
    pub robdd_cache_misses: u64,
    /// ROBDD operation-cache evictions (lossy direct-mapped conflicts)
    /// during the build.
    pub robdd_cache_evictions: u64,
    /// ROBDD operation-cache hit rate of the build, in percent.
    pub robdd_cache_hit_percent: f64,
    /// ROBDD operation-cache evict rate (evictions per insertion) of the
    /// build, in percent.
    pub robdd_cache_evict_percent: f64,
    /// ROBDD operation-cache hits obtained through a complemented-edge
    /// negation normalization (`0` when complemented edges are off).
    /// Counts cache behaviour, so the anchors treat it as volatile.
    pub robdd_complement_hits: u64,
    /// Wall-clock seconds of this row's evaluation. For rows produced by
    /// a sweep this **excludes** the compile, which
    /// [`compile_seconds`](ResultRow::compile_seconds) carries; for rows
    /// produced by a one-shot [`Pipeline::evaluate`] that had to compile,
    /// it includes it (see [`YieldReport::total_time`]).
    pub seconds: f64,
    /// Wall-clock seconds of the compile that produced the evaluated
    /// diagram (coded-ROBDD build + ROMDD conversion).
    pub compile_seconds: f64,
    /// Intra-compilation parallel sections opened while compiling this
    /// row's diagrams (ROBDD + ROMDD managers; `0` under sequential
    /// compilation). `par_*` fields track the compile-thread resource
    /// knob, so the anchors treat them as volatile.
    pub par_sections: u64,
    /// Tasks those parallel sections were split into.
    pub par_tasks: u64,
    /// Work-stealing pool steals inside those sections
    /// (scheduling-dependent).
    pub par_steals: u64,
    /// Contended unique-table shard acquisitions inside those sections
    /// (scheduling-dependent).
    pub par_shard_contention: u64,
}

impl ResultRow {
    /// Builds a row from a workload and a finished report.
    pub fn from_report(workload: &Workload, report: &YieldReport) -> Self {
        Self {
            benchmark: workload.system.name.clone(),
            lambda: workload.lambda,
            ordering: report.spec.label(),
            truncation: report.truncation,
            components: report.num_components,
            fault_tree_gates: workload.system.num_gates(),
            g_gates: report.g_gates,
            robdd_size: report.coded_robdd_size,
            robdd_peak: report.robdd_peak,
            romdd_size: report.romdd_size,
            yield_lower_bound: report.yield_lower_bound,
            error_bound: report.error_bound,
            fidelity: report.fidelity.tag(),
            robdd_unique_entries: report.robdd_stats.unique_entries,
            robdd_cache_hits: report.robdd_stats.op_cache_hits,
            robdd_cache_misses: report.robdd_stats.op_cache_misses,
            robdd_cache_evictions: report.robdd_stats.op_cache_evictions,
            robdd_cache_hit_percent: report.robdd_stats.op_cache_hit_rate_percent(),
            robdd_cache_evict_percent: report.robdd_stats.op_cache_evict_rate_percent(),
            robdd_complement_hits: report.robdd_stats.complement_hits,
            seconds: report.total_time.as_secs_f64(),
            compile_seconds: (report.robdd_time + report.conversion_time).as_secs_f64(),
            par_sections: report.robdd_stats.par_sections + report.romdd_stats.par_sections,
            par_tasks: report.robdd_stats.par_tasks + report.romdd_stats.par_tasks,
            par_steals: report.robdd_stats.par_steals + report.romdd_stats.par_steals,
            par_shard_contention: report.robdd_stats.par_shard_contention
                + report.romdd_stats.par_shard_contention,
        }
    }
}

/// Errors surfaced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// The analysis itself failed.
    Core(CoreError),
    /// The defect model could not be constructed.
    Defect(DefectError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Core(e) => write!(f, "{e}"),
            HarnessError::Defect(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CoreError> for HarnessError {
    fn from(e: CoreError) -> Self {
        HarnessError::Core(e)
    }
}

impl From<DefectError> for HarnessError {
    fn from(e: DefectError) -> Self {
        HarnessError::Defect(e)
    }
}

/// Default live-node budget of a [`Runner`]'s pipeline cache: enough to
/// keep a handful of the paper's systems resident (their ROMDDs are
/// hundreds to a few thousand nodes each) while bounding a long table
/// run that touches every benchmark.
pub const RUNNER_LIVE_NODE_BUDGET: usize = 1 << 16;

/// A harness that keeps the [`Pipeline`]s of the benchmark systems it
/// recently worked on in an LRU cache ([`PipelineLru`]), so consecutive
/// evaluations of the same system (another ordering spec, another λ'
/// whose truncation a compiled diagram already covers) skip the
/// truncate/encode/order/compile/convert chain.
///
/// A diagram is reused only when it covers the requested truncation at
/// the same ordering spec; the shipped tables iterate λ' in ascending
/// order, so every printed row reports the sizes of a diagram compiled
/// at exactly that row's truncation, as the paper's tables do. Eviction
/// is charged against **live** (post-GC) ROMDD nodes —
/// [`Pipeline::live_nodes`], the same cost definition the `socy-serve`
/// cache uses — never against the transient `peak_nodes` high-water
/// mark, so a long-lived pipeline is not evicted for construction
/// pressure it has already garbage-collected.
pub struct Runner {
    cache: PipelineLru<String>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// Creates an empty runner with the default live-node budget
    /// [`RUNNER_LIVE_NODE_BUDGET`].
    pub fn new() -> Self {
        Self::with_budget(Some(RUNNER_LIVE_NODE_BUDGET))
    }

    /// Creates an empty runner evicting down to `budget` summed live
    /// nodes (`None` disables eviction).
    pub fn with_budget(budget: Option<usize>) -> Self {
        Self { cache: PipelineLru::new(budget) }
    }

    /// The underlying pipeline cache (for inspecting hit/miss/eviction
    /// counters or residency).
    pub fn cache(&self) -> &PipelineLru<String> {
        &self.cache
    }

    /// Runs one workload under one ordering spec, reusing a cached
    /// pipeline when one is resident for the same system, and returns
    /// the full [`YieldReport`].
    ///
    /// # Errors
    ///
    /// Propagates analysis or defect-model construction failures.
    pub fn run_report(
        &mut self,
        workload: &Workload,
        spec: OrderingSpec,
    ) -> Result<YieldReport, HarnessError> {
        let components = workload.system.component_probabilities(LETHALITY)?;
        let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA)?;
        let lethal = raw.thinned(components.lethality())?;
        let options = AnalysisOptions { epsilon: EPSILON, spec, ..AnalysisOptions::default() };
        let name = &workload.system.name;
        let pipeline = self.cache.get_or_try_insert_with(name, || {
            Pipeline::new(&workload.system.fault_tree, &components).map_err(HarnessError::from)
        })?;
        Ok(pipeline.evaluate(&lethal, &options)?)
    }

    /// Like [`Runner::run_report`], condensed into a table [`ResultRow`].
    ///
    /// # Errors
    ///
    /// Propagates analysis or defect-model construction failures.
    pub fn run(
        &mut self,
        workload: &Workload,
        spec: OrderingSpec,
    ) -> Result<ResultRow, HarnessError> {
        let report = self.run_report(workload, spec)?;
        Ok(ResultRow::from_report(workload, &report))
    }
}

/// Runs the full pipeline for one workload under one ordering spec
/// (one-shot; tables iterating many points should share a [`Runner`]
/// or, better, batch everything into one [`run_table`] call).
///
/// # Errors
///
/// Propagates analysis or defect-model construction failures.
pub fn run_workload(workload: &Workload, spec: OrderingSpec) -> Result<ResultRow, HarnessError> {
    Runner::new().run(workload, spec)
}

/// Answers one table cell with deterministic Monte-Carlo confidence
/// bounds (`fidelity: "bounds"`) instead of a compiled evaluation — the
/// graceful-degradation fallback the tables use when a governed
/// compilation trips its resource budget (the exploding `vw` / `vrw`
/// orderings under a pinned `--node-budget`). The bounds depend only on
/// the fault tree and the defect model, never on the diagrams, so the
/// row is bit-identical at every thread count and complement mode and
/// can be pinned as an anchor fixture.
///
/// # Errors
///
/// Propagates simulation or defect-model construction failures.
pub fn bounds_row(workload: &Workload, spec: OrderingSpec) -> Result<ResultRow, HarnessError> {
    let components = workload.system.component_probabilities(LETHALITY)?;
    let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA)?;
    let lethal = raw.thinned(components.lethality())?;
    let options = AnalysisOptions { epsilon: EPSILON, spec, ..AnalysisOptions::default() };
    let pipeline = Pipeline::new(&workload.system.fault_tree, &components)?;
    let report = pipeline.evaluate_bounds(&lethal, &options, &DegradeLadder::bounds_only())?;
    Ok(ResultRow::from_report(workload, &report))
}

/// The [`SystemSpec`] of a benchmark workload (shared lethality
/// [`LETHALITY`], like the tables).
///
/// # Errors
///
/// Propagates defect-model construction failures.
pub fn system_spec(system: &BenchmarkSystem) -> Result<SystemSpec, HarnessError> {
    let components = system.component_probabilities(LETHALITY)?;
    Ok(SystemSpec::new(system.name.clone(), system.fault_tree.clone(), components))
}

/// The thinned lethal-defect distribution of a workload, named like the
/// table rows (`λ'=1`).
///
/// # Errors
///
/// Propagates defect-model construction failures.
pub fn workload_distribution(workload: &Workload) -> Result<NamedDistribution, HarnessError> {
    let components = workload.system.component_probabilities(LETHALITY)?;
    let raw = NegativeBinomial::new(workload.lambda / LETHALITY, ALPHA)?;
    let lethal = raw.thinned(components.lethality())?;
    Ok(NamedDistribution::new(format!("λ'={}", workload.lambda), lethal))
}

/// Result of [`run_table`]: per-cell reports in the same shape as the
/// request, plus the engine's aggregate statistics.
#[derive(Debug)]
pub struct TableOutcome {
    /// One entry per requested `(workload, specs)` cell, holding one
    /// result per spec, in order.
    pub cells: Vec<Vec<Result<YieldReport, SweepError>>>,
    /// Aggregate execution statistics of the underlying sweep.
    pub summary: SweepSummary,
}

/// Evaluates a whole table — a list of `(workload, ordering specs)`
/// cells — through the parallel sweep engine ([`SweepMatrix::run`]) and
/// regroups the reports per cell.
///
/// Each cell becomes its own [`SweepBlock`], so every printed row
/// reports the metrics of a decision diagram compiled at exactly that
/// row's truncation (the behaviour of the serial [`Runner`] tables, and
/// of the paper's). The engine guarantees results are bit-identical for
/// every `threads` value.
///
/// # Errors
///
/// Fails up front on defect-model construction errors; per-point
/// analysis failures are reported inside the affected cell instead, so
/// one exploding configuration does not take down the whole table.
pub fn run_table(
    cells: &[(Workload, Vec<OrderingSpec>)],
    threads: usize,
    options: CompileOptions,
) -> Result<TableOutcome, HarnessError> {
    let mut matrix = SweepMatrix::new();
    matrix.options = options;
    for (workload, specs) in cells {
        let mut block = SweepBlock::new();
        block.systems.push(system_spec(&workload.system)?);
        block.distributions.push(workload_distribution(workload)?);
        block.specs = specs.clone();
        block.rules.push(TruncationRule::Epsilon(EPSILON));
        matrix.add(block);
    }
    let outcome = matrix.run(threads);
    let summary = outcome.summary;
    let mut points = outcome.points.into_iter();
    let cells = cells
        .iter()
        .map(|(_, specs)| {
            specs
                .iter()
                .map(|_| points.next().expect("one point per requested spec").result)
                .collect()
        })
        .collect();
    Ok(TableOutcome { cells, summary })
}

/// One-line execution summary printed by the table binaries, e.g.
/// `12 points · 12 chunks · 4 threads · 1.23 s`.
pub fn summary_line(summary: &SweepSummary) -> String {
    format!(
        "{} points · {} chunks · {} thread{} · {} s",
        summary.points,
        summary.chunks,
        summary.threads,
        if summary.threads == 1 { "" } else { "s" },
        fmt_seconds(summary.wall_time),
    )
}

/// Formats a duration as seconds with two decimals (Table 4 style).
pub fn fmt_seconds(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Common CLI options of the table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Skip instances with more components than this.
    pub max_components: usize,
    /// Optional path for a machine-readable JSON dump of the rows.
    pub json: Option<String>,
    /// Worker threads for the parallel sweep engine (`0` = all available
    /// cores). Any value produces bit-identical tables; it only changes
    /// the wall-clock time.
    pub threads: usize,
    /// The shared kernel knobs and resource limits (`--compile-threads`,
    /// `--compile-grain`, `--no-complement-edges`, `--op-cache-capacity`,
    /// `--node-budget`, `--deadline-ms`): one
    /// [`CompileOptions`] value parsed through
    /// [`CompileOptions::parse_cli_flag`] — the same helper the `serve`
    /// binary uses, so both CLIs expose exactly one flag surface. Every
    /// knob is bit-identical on the result side.
    pub options: CompileOptions,
    /// Optional baseline `BENCH_sweep.json` to compare wall-clock times
    /// against (`bench_matrix` only).
    pub baseline: Option<String>,
    /// Compile every what-if delta of the pinned matrix from scratch as
    /// its own materialized system instead of taking the incremental
    /// delta path (`bench_matrix --scratch-deltas`; the CI gate diffs
    /// the two modes).
    pub scratch_deltas: bool,
}

/// Parses the common CLI flags of the table binaries:
/// `--max-components <C>`, `--json <path>`, `--threads <N>`,
/// `--baseline <path>`, `--scratch-deltas`, plus the shared
/// [`CompileOptions`] surface (`--compile-threads <N>`,
/// `--compile-grain <N>`, `--no-complement-edges`,
/// `--op-cache-capacity <N>`, `--node-budget <N>`, `--deadline-ms <MS>`
/// — see [`CompileOptions::CLI_HELP`]).
pub fn parse_cli(default_max: usize) -> CliArgs {
    let mut parsed = CliArgs {
        max_components: default_max,
        json: None,
        threads: 0,
        options: CompileOptions::default(),
        baseline: None,
        scratch_deltas: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match parsed.options.parse_cli_flag(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => {
                eprintln!("{message}");
                continue;
            }
        }
        match arg.as_str() {
            "--max-components" => {
                if let Some(v) = args.next() {
                    parsed.max_components = v.parse().unwrap_or(default_max);
                }
            }
            "--json" => parsed.json = args.next(),
            "--threads" => {
                if let Some(v) = args.next() {
                    parsed.threads = v.parse().unwrap_or(0);
                }
            }
            "--baseline" => parsed.baseline = args.next(),
            "--scratch-deltas" => parsed.scratch_deltas = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    parsed
}

/// Whether an anchor JSON field is volatile — wall-clock measurements
/// and execution-environment knobs that legitimately differ from run to
/// run and machine to machine. The `par_*` counters (parallel sections,
/// tasks, steals, shard contention) track the compile-thread resource
/// knob rather than the analysis, so they are volatile too, as is
/// `*complement_hits` — a cache-behaviour tally that is only nonzero
/// with complemented edges on and, like every cache counter, is
/// scheduling-dependent under parallel compilation. Everything else
/// (node counts, peaks, truncations, cache statistics, yields) is
/// gated bit-for-bit.
pub fn is_volatile_anchor_field(name: &str) -> bool {
    name == "seconds"
        || name == "threads"
        || name == "compile_threads"
        || name.ends_with("_seconds")
        || name.starts_with("par_")
        || name.ends_with("complement_hits")
}

/// Whether an anchor JSON field is an operation-cache counter
/// (`*_cache_hits`, `*_cache_hit_percent`, …). Deterministic under
/// sequential compilation — and therefore gated by default — but
/// scheduling-dependent when `--compile-threads` exceeds 1, because the
/// concurrent op cache is lossy (racing writers may drop publications,
/// changing hit/miss/insertion tallies without affecting any result).
/// The `--volatile-cache-counters` mode of `anchor_check` exempts them
/// so CI can gate a parallel-compilation run against the sequential
/// fixture.
pub fn is_cache_counter_anchor_field(name: &str) -> bool {
    name.contains("_cache_")
}

/// Whether an anchor JSON field legitimately *changes* when complemented
/// edges are toggled: the ROBDD-side node counts (`robdd_size`,
/// `robdd_peak`, `robdd_unique_entries`, the `robdd_peak_*` aggregates)
/// — complemented edges share one node between each function and its
/// negation, so the physical diagram shrinks — plus every cache counter
/// (the two modes probe different keys). Everything the paper reports
/// — yields, error bounds, truncations, ROMDD node counts — is
/// complement-invariant and stays gated bit-for-bit by the
/// `--complement-invariant` mode of `anchor_check`.
pub fn is_complement_variant_anchor_field(name: &str) -> bool {
    name.starts_with("robdd_") || is_cache_counter_anchor_field(name)
}

/// Maximum number of per-field divergences reported by
/// [`diff_anchor_values`] before the tail is summarised.
const MAX_REPORTED_DIVERGENCES: usize = 20;

/// Structurally compares two anchor JSON documents, ignoring
/// [volatile](is_volatile_anchor_field) fields, and returns one
/// readable line per divergent field (`path: fixture … actual …`).
/// Numbers must match bit-for-bit (floats are compared by their bit
/// patterns, so even last-ulp yield drift is caught).
///
/// # Errors
///
/// Returns a readable message when either document is not valid JSON.
pub fn diff_anchor_values(fixture: &str, actual: &str) -> Result<Vec<String>, String> {
    diff_anchor_values_lax(fixture, actual, false)
}

/// Like [`diff_anchor_values`], but when `volatile_cache_counters` is
/// set, additionally exempts [cache-counter](is_cache_counter_anchor_field)
/// fields — the mode CI uses to gate a `--compile-threads 2` run against
/// the sequential fixture (yields, node counts and truncations stay
/// gated bit-for-bit; only the lossy concurrent cache's tallies are
/// excused).
///
/// # Errors
///
/// Returns a readable message when either document is not valid JSON.
pub fn diff_anchor_values_lax(
    fixture: &str,
    actual: &str,
    volatile_cache_counters: bool,
) -> Result<Vec<String>, String> {
    diff_anchor_values_with(
        fixture,
        actual,
        DiffPolicy {
            lax_cache: volatile_cache_counters,
            complement_invariant: false,
            execution_shape: false,
        },
    )
}

/// Like [`diff_anchor_values`], but compares only
/// complement-*invariant* fields: the
/// [complement-variant](is_complement_variant_anchor_field) ROBDD node
/// counts and all cache counters are exempted, while yields, error
/// bounds, truncations and ROMDD node counts stay gated bit-for-bit.
/// This is the `--complement-invariant` mode of `anchor_check`, which
/// CI uses to gate a `--no-complement-edges` regeneration against the
/// complement-enabled fixture — proving the toggle is a pure
/// representation knob.
///
/// # Errors
///
/// Returns a readable message when either document is not valid JSON.
pub fn diff_anchor_values_complement_invariant(
    fixture: &str,
    actual: &str,
) -> Result<Vec<String>, String> {
    diff_anchor_values_with(
        fixture,
        actual,
        DiffPolicy { lax_cache: false, complement_invariant: true, execution_shape: false },
    )
}

/// Like [`diff_anchor_values`], but compares only the fields the
/// incremental delta path must reproduce: on top of the
/// complement-invariant exemptions (the retained base manager
/// accumulates nodes across delta rebuilds, so ROBDD peaks and cache
/// tallies legitimately differ from per-variant fresh compiles), the
/// execution-shape field `chunks` is exempt — a delta family runs as
/// one chunk while its from-scratch materialization runs one chunk per
/// variant. Yields, error bounds, truncations, ROMDD node counts and
/// the point labels stay gated bit-for-bit. This is the
/// `--delta-equivalence` mode of `anchor_check`, which CI uses to gate
/// a `bench_matrix --scratch-deltas` regeneration against the
/// delta-path fixture.
///
/// # Errors
///
/// Returns a readable message when either document is not valid JSON.
pub fn diff_anchor_values_delta_equivalence(
    fixture: &str,
    actual: &str,
) -> Result<Vec<String>, String> {
    diff_anchor_values_with(
        fixture,
        actual,
        DiffPolicy { lax_cache: false, complement_invariant: true, execution_shape: true },
    )
}

/// Field-exemption policy of one anchor comparison (volatile fields are
/// always exempt).
#[derive(Clone, Copy)]
struct DiffPolicy {
    /// Additionally exempt cache counters (parallel-compilation mode).
    lax_cache: bool,
    /// Additionally exempt complement-variant fields (dual-mode gate).
    complement_invariant: bool,
    /// Additionally exempt the matrix partitioning shape (`chunks`) —
    /// the delta-equivalence gate compares a one-chunk delta family
    /// against its chunk-per-variant materialization.
    execution_shape: bool,
}

impl DiffPolicy {
    fn exempt(self, name: &str) -> bool {
        is_volatile_anchor_field(name)
            || (self.lax_cache && is_cache_counter_anchor_field(name))
            || (self.complement_invariant && is_complement_variant_anchor_field(name))
            || (self.execution_shape && name == "chunks")
    }
}

fn diff_anchor_values_with(
    fixture: &str,
    actual: &str,
    policy: DiffPolicy,
) -> Result<Vec<String>, String> {
    let fixture =
        serde_json::from_str(fixture).map_err(|e| format!("fixture is malformed: {e}"))?;
    let actual = serde_json::from_str(actual).map_err(|e| format!("actual is malformed: {e}"))?;
    let mut diffs = Vec::new();
    diff_values(&fixture, &actual, "$", policy, &mut diffs);
    if diffs.len() > MAX_REPORTED_DIVERGENCES {
        let more = diffs.len() - MAX_REPORTED_DIVERGENCES;
        diffs.truncate(MAX_REPORTED_DIVERGENCES);
        diffs.push(format!("… and {more} more divergent fields"));
    }
    Ok(diffs)
}

fn describe(value: &serde::Value) -> String {
    match value {
        serde::Value::Array(items) => format!("an array of {} items", items.len()),
        serde::Value::Object(fields) => format!("an object with {} fields", fields.len()),
        other => other.to_pretty_string(),
    }
}

fn diff_values(
    fixture: &serde::Value,
    actual: &serde::Value,
    path: &str,
    policy: DiffPolicy,
    out: &mut Vec<String>,
) {
    use serde::Value;
    match (fixture, actual) {
        (Value::Array(f), Value::Array(a)) => {
            if f.len() != a.len() {
                out.push(format!("{path}: fixture has {} rows, actual has {}", f.len(), a.len()));
            }
            for (i, (fv, av)) in f.iter().zip(a).enumerate() {
                diff_values(fv, av, &format!("{path}[{i}]"), policy, out);
            }
        }
        (Value::Object(f), Value::Object(a)) => {
            for (name, fv) in f {
                if policy.exempt(name) {
                    continue;
                }
                match a.iter().find(|(n, _)| n == name) {
                    Some((_, av)) => diff_values(fv, av, &format!("{path}.{name}"), policy, out),
                    None => out.push(format!("{path}.{name}: missing from actual")),
                }
            }
            for (name, _) in a {
                if !policy.exempt(name) && !f.iter().any(|(n, _)| n == name) {
                    out.push(format!("{path}.{name}: not in fixture"));
                }
            }
        }
        // Floats are gated on exact bit patterns: the anchors pin the
        // pipeline's arithmetic, not a tolerance band.
        (Value::Float(f), Value::Float(a)) if f.to_bits() == a.to_bits() => {}
        (Value::Float(_), Value::Float(_)) => {
            out.push(format!("{path}: fixture {} actual {}", describe(fixture), describe(actual)));
        }
        (f, a) if f == a => {}
        _ => {
            out.push(format!("{path}: fixture {} actual {}", describe(fixture), describe(actual)));
        }
    }
}

/// Diffs two anchor JSON dumps, ignoring only
/// [volatile](is_volatile_anchor_field) fields. Returns `None` when they
/// agree and a human-readable per-field report otherwise (including when
/// either document is malformed).
pub fn diff_anchors(fixture: &str, actual: &str) -> Option<String> {
    match diff_anchor_values(fixture, actual) {
        Err(message) => Some(message),
        Ok(diffs) if diffs.is_empty() => None,
        Ok(diffs) => Some(diffs.join("\n")),
    }
}

/// Schema tag of the `BENCH_sweep.json` perf artifact.
pub const BENCH_SWEEP_SCHEMA: &str = "socy-bench-sweep/v1";

/// One design point of the `BENCH_sweep.json` perf artifact. Every field
/// except `seconds` is deterministic and gated by the `perf-smoke` CI
/// job; `seconds` is the point's wall-clock evaluation time (for sweep
/// points this excludes the shared compile, which `compile_seconds` of
/// [`BenchSweepTotals`] accounts for).
#[derive(Debug, Clone, Serialize)]
pub struct BenchSweepPoint {
    /// Benchmark name. Points produced by a what-if delta fold the delta
    /// name into the label (`ESEN4x1·Δx0-half`), so the point key
    /// `benchmark|distribution|ordering|rule` stays unique and a
    /// from-scratch regeneration of the same variant (a standalone
    /// system carrying the identical folded name) lines up with it.
    pub benchmark: String,
    /// Lethal-defect distribution label (`λ'=1`).
    pub distribution: String,
    /// Ordering-spec label (`w/ml`).
    pub ordering: String,
    /// Truncation rule label (`ε=1e-3`).
    pub rule: String,
    /// Truncation point `M` of this point.
    pub truncation: usize,
    /// Truncation the evaluated diagram was compiled at.
    pub compiled_truncation: usize,
    /// Yield lower bound `Y_M`.
    pub yield_lower_bound: f64,
    /// Guaranteed absolute error bound.
    pub error_bound: f64,
    /// Fidelity of this point's answer (`exact`, `degraded:<rung>` or
    /// `bounds` — see [`soc_yield_core::Fidelity::tag`]).
    pub fidelity: String,
    /// Coded-ROBDD size (reachable nodes).
    pub robdd_size: usize,
    /// Peak ROBDD nodes during construction.
    pub robdd_peak: usize,
    /// ROMDD size (reachable nodes).
    pub romdd_size: usize,
    /// ROBDD operation-cache hits of the compile.
    pub robdd_cache_hits: u64,
    /// ROBDD operation-cache misses of the compile.
    pub robdd_cache_misses: u64,
    /// ROBDD operation-cache evictions of the compile (the cache is
    /// lossy and direct-mapped; evictions cost recomputation, never
    /// correctness).
    pub robdd_cache_evictions: u64,
    /// ROBDD operation-cache hit rate of the compile, in percent.
    pub robdd_cache_hit_percent: f64,
    /// ROBDD operation-cache evict rate (evictions per insertion) of the
    /// compile, in percent.
    pub robdd_cache_evict_percent: f64,
    /// ROBDD operation-cache hits obtained through a complemented-edge
    /// negation normalization (volatile — `0` with complemented edges
    /// off, scheduling-dependent under parallel compilation).
    pub robdd_complement_hits: u64,
    /// Parallel compile sections entered (ROBDD + ROMDD; volatile —
    /// tracks the `--compile-threads` resource knob).
    pub par_sections: u64,
    /// Tasks executed inside parallel compile sections (volatile).
    pub par_tasks: u64,
    /// Work-steal events inside parallel compile sections (volatile).
    pub par_steals: u64,
    /// Unique-table shard-lock contention events inside parallel compile
    /// sections (volatile).
    pub par_shard_contention: u64,
    /// Wall-clock seconds of this point's evaluation (volatile).
    pub seconds: f64,
}

/// Aggregate section of the `BENCH_sweep.json` perf artifact. The
/// `*_seconds` fields are wall-clock measurements (volatile); the rest
/// is deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSweepTotals {
    /// Design points evaluated.
    pub points: usize,
    /// Compilation chunks the matrix was partitioned into.
    pub chunks: usize,
    /// Points whose chunk failed.
    pub failed_points: usize,
    /// Largest single-manager ROBDD peak (memory high-water mark).
    pub robdd_peak_max: usize,
    /// Sum of per-manager ROBDD peaks.
    pub robdd_peak_sum: u64,
    /// ROBDD operation-cache hits across all compiles.
    pub robdd_cache_hits: u64,
    /// ROBDD operation-cache misses across all compiles.
    pub robdd_cache_misses: u64,
    /// ROBDD operation-cache evictions across all compiles.
    pub robdd_cache_evictions: u64,
    /// ROBDD operation-cache hit rate across all compiles, in percent.
    pub robdd_cache_hit_percent: f64,
    /// ROBDD operation-cache evict rate across all compiles, in percent.
    pub robdd_cache_evict_percent: f64,
    /// ROBDD operation-cache hits obtained through a complemented-edge
    /// negation normalization across all compiles (volatile).
    pub robdd_complement_hits: u64,
    /// ROBDD garbage collections across all compiles.
    pub robdd_gc_runs: u64,
    /// ROMDD operation-cache hits across all managers.
    pub romdd_cache_hits: u64,
    /// ROMDD operation-cache misses across all managers.
    pub romdd_cache_misses: u64,
    /// ROMDD operation-cache evictions across all managers.
    pub romdd_cache_evictions: u64,
    /// Parallel compile sections entered across all managers (ROBDD +
    /// ROMDD; volatile — tracks the `--compile-threads` resource knob).
    pub par_sections: u64,
    /// Tasks executed inside parallel compile sections (volatile).
    pub par_tasks: u64,
    /// Work-steal events inside parallel compile sections (volatile).
    pub par_steals: u64,
    /// Unique-table shard-lock contention events inside parallel compile
    /// sections (volatile).
    pub par_shard_contention: u64,
    /// Wall-clock seconds of the whole run (volatile).
    pub wall_seconds: f64,
    /// Sum of the workers' busy seconds (volatile).
    pub busy_seconds: f64,
    /// Sum of the chunks' compile seconds — ROBDD build + ROMDD
    /// conversion (volatile).
    pub compile_seconds: f64,
}

/// The machine-readable `BENCH_sweep.json` document emitted by the
/// `bench_matrix` binary: the repo's recorded perf trajectory. CI's
/// `perf-smoke` job regenerates it on every PR and gates the
/// deterministic fields against `tests/fixtures/bench_sweep.json` while
/// uploading the measured wall-clock numbers as an artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSweepDoc {
    /// Schema tag ([`BENCH_SWEEP_SCHEMA`]).
    pub schema: String,
    /// Worker threads used (volatile).
    pub threads: usize,
    /// Worker threads used *inside* each compilation (volatile — a
    /// resource knob; every other deterministic field is bit-identical
    /// at every setting).
    pub compile_threads: usize,
    /// Per-point measurements, in matrix order.
    pub points: Vec<BenchSweepPoint>,
    /// Aggregates.
    pub totals: BenchSweepTotals,
}

impl BenchSweepDoc {
    /// Condenses a finished sweep into the artifact document. Failed
    /// points are skipped (they are visible in `totals.failed_points`).
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let summary = &outcome.summary;
        let points = outcome
            .points
            .iter()
            .filter_map(|point| {
                let report = point.result.as_ref().ok()?;
                let benchmark = match &point.labels.delta {
                    None => point.labels.system.clone(),
                    Some(delta) => format!("{}·Δ{delta}", point.labels.system),
                };
                Some(BenchSweepPoint {
                    benchmark,
                    distribution: point.labels.distribution.clone(),
                    ordering: point.labels.spec.label(),
                    rule: point.labels.rule.label(),
                    truncation: report.truncation,
                    compiled_truncation: report.compiled_truncation,
                    yield_lower_bound: report.yield_lower_bound,
                    error_bound: report.error_bound,
                    fidelity: report.fidelity.tag(),
                    robdd_size: report.coded_robdd_size,
                    robdd_peak: report.robdd_peak,
                    romdd_size: report.romdd_size,
                    robdd_cache_hits: report.robdd_stats.op_cache_hits,
                    robdd_cache_misses: report.robdd_stats.op_cache_misses,
                    robdd_cache_evictions: report.robdd_stats.op_cache_evictions,
                    robdd_cache_hit_percent: report.robdd_stats.op_cache_hit_rate_percent(),
                    robdd_cache_evict_percent: report.robdd_stats.op_cache_evict_rate_percent(),
                    robdd_complement_hits: report.robdd_stats.complement_hits,
                    par_sections: report.robdd_stats.par_sections + report.romdd_stats.par_sections,
                    par_tasks: report.robdd_stats.par_tasks + report.romdd_stats.par_tasks,
                    par_steals: report.robdd_stats.par_steals + report.romdd_stats.par_steals,
                    par_shard_contention: report.robdd_stats.par_shard_contention
                        + report.romdd_stats.par_shard_contention,
                    seconds: report.total_time.as_secs_f64(),
                })
            })
            .collect();
        Self {
            schema: BENCH_SWEEP_SCHEMA.to_string(),
            threads: summary.threads,
            compile_threads: summary.compile_threads,
            points,
            totals: BenchSweepTotals {
                points: summary.points,
                chunks: summary.chunks,
                failed_points: summary.failed_points,
                robdd_peak_max: summary.robdd.peak_nodes_max,
                robdd_peak_sum: summary.robdd.peak_nodes_sum,
                robdd_cache_hits: summary.robdd.op_cache_hits,
                robdd_cache_misses: summary.robdd.op_cache_misses,
                robdd_cache_evictions: summary.robdd.op_cache_evictions,
                robdd_cache_hit_percent: summary.robdd.cache_hit_percent(),
                robdd_cache_evict_percent: summary.robdd.cache_evict_percent(),
                robdd_complement_hits: summary.robdd.complement_hits,
                robdd_gc_runs: summary.robdd.gc_runs,
                romdd_cache_hits: summary.romdd.op_cache_hits,
                romdd_cache_misses: summary.romdd.op_cache_misses,
                romdd_cache_evictions: summary.romdd.op_cache_evictions,
                par_sections: summary.robdd.par_sections + summary.romdd.par_sections,
                par_tasks: summary.robdd.par_tasks + summary.romdd.par_tasks,
                par_steals: summary.robdd.par_steals + summary.romdd.par_steals,
                par_shard_contention: summary.robdd.par_shard_contention
                    + summary.romdd.par_shard_contention,
                wall_seconds: summary.wall_time.as_secs_f64(),
                busy_seconds: summary.busy_time.as_secs_f64(),
                compile_seconds: summary.compile_time.as_secs_f64(),
            },
        }
    }
}

/// Compares a freshly measured sweep against a baseline
/// `BENCH_sweep.json` and renders a per-point speedup/regression table
/// (wall-clock only; yield or size drift is reported loudly, since a
/// perf comparison across different results is meaningless).
///
/// # Errors
///
/// Returns a readable message when the baseline is malformed or its
/// schema tag is unknown.
pub fn baseline_comparison(baseline: &str, current: &BenchSweepDoc) -> Result<String, String> {
    let baseline =
        serde_json::from_str(baseline).map_err(|e| format!("baseline is malformed: {e}"))?;
    let schema = baseline.get("schema").and_then(serde::Value::as_str).unwrap_or("<missing>");
    if schema != BENCH_SWEEP_SCHEMA {
        return Err(format!(
            "baseline schema is `{schema}`, this binary understands `{BENCH_SWEEP_SCHEMA}`"
        ));
    }
    let baseline_threads = baseline.get("threads").and_then(serde::Value::as_u64).unwrap_or(0);
    let empty = Vec::new();
    let rows = baseline.get("points").and_then(serde::Value::as_array).unwrap_or(&empty);
    let key = |benchmark: &str, distribution: &str, ordering: &str, rule: &str| {
        format!("{benchmark}|{distribution}|{ordering}|{rule}")
    };
    let mut out = String::new();
    out.push_str(&format!(
        "baseline: {} points at {} threads — current: {} points at {} threads\n",
        rows.len(),
        baseline_threads,
        current.points.len(),
        current.threads
    ));
    out.push_str(&format!(
        "{:<44} {:>12} {:>12} {:>9}\n",
        "point", "baseline s", "current s", "speedup"
    ));
    let mut matched = 0usize;
    for point in &current.points {
        let id = key(&point.benchmark, &point.distribution, &point.ordering, &point.rule);
        let base = rows.iter().find(|row| {
            let field = |name: &str| {
                row.get(name).and_then(serde::Value::as_str).unwrap_or_default().to_string()
            };
            key(&field("benchmark"), &field("distribution"), &field("ordering"), &field("rule"))
                == id
        });
        let Some(base) = base else {
            out.push_str(&format!("{:<44} {:>12} {:>12} {:>9}\n", id, "-", "-", "new"));
            continue;
        };
        matched += 1;
        let base_yield = base.get("yield_lower_bound").and_then(serde::Value::as_f64);
        if base_yield.map(f64::to_bits) != Some(point.yield_lower_bound.to_bits()) {
            out.push_str(&format!(
                "{id}: RESULT DRIFT — baseline yield {:?} vs current {} (timing comparison \
                 suppressed)\n",
                base_yield, point.yield_lower_bound
            ));
            continue;
        }
        let base_seconds = base.get("seconds").and_then(serde::Value::as_f64).unwrap_or(0.0);
        let speedup =
            if point.seconds > 0.0 { base_seconds / point.seconds } else { f64::INFINITY };
        out.push_str(&format!(
            "{:<44} {:>12.6} {:>12.6} {:>8.2}x\n",
            id, base_seconds, point.seconds, speedup
        ));
    }
    let base_wall = baseline
        .get("totals")
        .and_then(|t| t.get("wall_seconds"))
        .and_then(serde::Value::as_f64)
        .unwrap_or(0.0);
    let wall_speedup = if current.totals.wall_seconds > 0.0 {
        base_wall / current.totals.wall_seconds
    } else {
        f64::INFINITY
    };
    out.push_str(&format!(
        "matched {matched}/{} points · wall clock {:.3} s → {:.3} s ({:.2}x)\n",
        current.points.len(),
        base_wall,
        current.totals.wall_seconds,
        wall_speedup
    ));
    Ok(out)
}

/// Writes rows as pretty-printed JSON to `path` when requested.
pub fn maybe_write_json<T: Serialize>(path: &Option<String>, rows: &[T]) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("could not serialise results: {e}"),
        }
    }
}

/// Writes one serialisable document as pretty-printed JSON to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_doc(path: &str, doc: &impl Serialize) -> std::io::Result<()> {
    let json =
        serde_json::to_string_pretty(doc).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_list_respects_component_bound() {
        let all = paper_workloads(usize::MAX);
        assert!(all.len() >= 11);
        let small = paper_workloads(20);
        assert!(small.iter().all(|w| w.system.num_components() <= 20));
        assert!(small.iter().any(|w| w.lambda == 2.0));
        assert!(!small.is_empty());
        assert!(small[0].label().contains("λ'"));
    }

    #[test]
    fn run_workload_on_smallest_instance() {
        let workload = Workload { system: socy_benchmarks::esen(4, 1), lambda: 1.0 };
        let row = run_workload(&workload, OrderingSpec::paper_default()).unwrap();
        assert_eq!(row.components, 14);
        assert!(row.yield_lower_bound > 0.5 && row.yield_lower_bound < 1.0);
        assert!(row.error_bound <= EPSILON);
        assert!(row.robdd_size > row.romdd_size);
        assert!(row.robdd_unique_entries > 0);
        assert!(row.robdd_cache_misses > 0);
        assert!(row.seconds >= 0.0);
    }

    #[test]
    fn runner_reuses_pipelines_across_lambdas() {
        let mut runner = Runner::new();
        let system = socy_benchmarks::esen(4, 1);
        let spec = OrderingSpec::paper_default();
        let one = runner.run(&Workload { system: system.clone(), lambda: 2.0 }, spec).unwrap();
        let two = runner.run(&Workload { system: system.clone(), lambda: 1.0 }, spec).unwrap();
        // λ' = 2 compiled at M = 10; the λ' = 1 point reuses that diagram.
        assert!(one.truncation > two.truncation);
        assert!(two.yield_lower_bound > one.yield_lower_bound);
        assert_eq!(runner.cache().stats().hits, 1, "the λ'=1 point hit the resident pipeline");
        // Switching systems keeps both resident — the budget is charged
        // against live nodes, and these diagrams are small.
        let other = socy_benchmarks::ms(2);
        let _ = runner.run(&Workload { system: other, lambda: 1.0 }, spec).unwrap();
        assert!(runner.cache().contains(&"MS2".to_string()));
        assert!(runner.cache().contains(&"ESEN4x1".to_string()));
        assert!(runner.cache().live_nodes() <= RUNNER_LIVE_NODE_BUDGET);
        // Coming back to the first system reuses its diagrams and agrees.
        let again = runner.run(&Workload { system, lambda: 1.0 }, spec).unwrap();
        assert_eq!(again.yield_lower_bound, two.yield_lower_bound);
        assert_eq!(runner.cache().stats().evictions, 0);
    }

    #[test]
    fn runner_budget_evicts_least_recently_used_system() {
        // A budget of one node cannot hold two systems: the older one is
        // evicted as soon as the next arrives.
        let mut runner = Runner::with_budget(Some(1));
        let spec = OrderingSpec::paper_default();
        let first = socy_benchmarks::esen(4, 1);
        let _ = runner.run(&Workload { system: first.clone(), lambda: 1.0 }, spec).unwrap();
        let _ =
            runner.run(&Workload { system: socy_benchmarks::ms(2), lambda: 1.0 }, spec).unwrap();
        assert!(!runner.cache().contains(&first.name));
        assert!(runner.cache().contains(&"MS2".to_string()));
        assert_eq!(runner.cache().stats().evictions, 1);
    }

    #[test]
    fn cli_helpers() {
        assert_eq!(fmt_seconds(Duration::from_millis(1234)), "1.23");
        // maybe_write_json with None is a no-op.
        maybe_write_json::<ResultRow>(&None, &[]);
    }

    #[test]
    fn run_table_matches_the_serial_runner() {
        let esen = socy_benchmarks::esen(4, 1);
        let cells = vec![
            (
                Workload { system: esen.clone(), lambda: 1.0 },
                vec![
                    OrderingSpec::paper_default(),
                    OrderingSpec::new(
                        socy_ordering::MvOrdering::Wv,
                        socy_ordering::GroupOrdering::MsbFirst,
                    )
                    .unwrap(),
                ],
            ),
            (Workload { system: esen.clone(), lambda: 2.0 }, vec![OrderingSpec::paper_default()]),
        ];
        let outcome = run_table(&cells, 2, CompileOptions::default()).unwrap();
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.cells[0].len(), 2);
        assert_eq!(outcome.cells[1].len(), 1);
        assert_eq!(outcome.summary.points, 3);
        assert_eq!(outcome.summary.chunks, 3);
        // Cell-by-cell the parallel engine reproduces the serial Runner
        // bit for bit (each cell compiles at its own truncation).
        let mut runner = Runner::new();
        for ((workload, specs), results) in cells.iter().zip(&outcome.cells) {
            for (spec, result) in specs.iter().zip(results) {
                let parallel = result.as_ref().unwrap();
                let serial = runner.run_report(workload, *spec).unwrap();
                assert_eq!(
                    parallel.yield_lower_bound.to_bits(),
                    serial.yield_lower_bound.to_bits()
                );
                assert_eq!(parallel.truncation, serial.truncation);
                assert_eq!(parallel.compiled_truncation, serial.compiled_truncation);
                assert_eq!(parallel.coded_robdd_size, serial.coded_robdd_size);
                assert_eq!(parallel.robdd_peak, serial.robdd_peak);
                assert_eq!(parallel.romdd_size, serial.romdd_size);
            }
        }
        assert!(summary_line(&outcome.summary).contains("3 points · 3 chunks"));
    }

    #[test]
    fn volatile_anchor_fields() {
        assert!(is_volatile_anchor_field("seconds"));
        assert!(is_volatile_anchor_field("threads"));
        assert!(is_volatile_anchor_field("compile_threads"));
        assert!(is_volatile_anchor_field("wall_seconds"));
        assert!(is_volatile_anchor_field("compile_seconds"));
        assert!(is_volatile_anchor_field("par_sections"));
        assert!(is_volatile_anchor_field("par_tasks"));
        assert!(is_volatile_anchor_field("par_steals"));
        assert!(is_volatile_anchor_field("par_shard_contention"));
        assert!(!is_volatile_anchor_field("points"));
        assert!(!is_volatile_anchor_field("yield_lower_bound"));
        assert!(!is_volatile_anchor_field("robdd_peak"));
        // Cache counters are gated strictly by default…
        assert!(!is_volatile_anchor_field("robdd_cache_hits"));
        assert!(is_cache_counter_anchor_field("robdd_cache_hits"));
        assert!(is_cache_counter_anchor_field("romdd_cache_hit_percent"));
        assert!(!is_cache_counter_anchor_field("robdd_size"));
        // The structural diff applies the same volatile set.
        let fixture = "{\n  \"threads\": 4,\n  \"robdd_size\": 9897,\n  \"busy_seconds\": 0.5\n}";
        let rerun = "{\n  \"threads\": 1,\n  \"robdd_size\": 9897,\n  \"busy_seconds\": 9.5\n}";
        assert_eq!(diff_anchors(fixture, rerun), None);
        // …and exempted only under the lax parallel-compile mode, which
        // still gates everything else bit-for-bit.
        let fixture = "{\n  \"robdd_cache_hits\": 120,\n  \"robdd_size\": 9897\n}";
        let parallel = "{\n  \"robdd_cache_hits\": 118,\n  \"robdd_size\": 9897\n}";
        assert_eq!(diff_anchor_values_lax(fixture, parallel, true).unwrap(), Vec::<String>::new());
        assert_eq!(diff_anchor_values_lax(fixture, parallel, false).unwrap().len(), 1);
        let drifted = "{\n  \"robdd_cache_hits\": 118,\n  \"robdd_size\": 9898\n}";
        assert_eq!(diff_anchor_values_lax(fixture, drifted, true).unwrap().len(), 1);
    }

    #[test]
    fn semantic_anchor_diff_reports_every_divergent_field() {
        let fixture = r#"[
  {
    "benchmark": "MS2",
    "robdd_size": 100,
    "seconds": 0.1,
    "yield_lower_bound": 0.5
  },
  {
    "benchmark": "MS4",
    "robdd_size": 200,
    "seconds": 0.2,
    "yield_lower_bound": 0.25
  }
]"#;
        let actual = fixture.replace("100", "101").replace("0.25", "0.26").replace("0.2,", "9.9,");
        let diffs = diff_anchor_values(fixture, &actual).unwrap();
        // Both real divergences are listed, the wall-clock one is not.
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains("$[0].robdd_size") && diffs[0].contains("101"), "{diffs:?}");
        assert!(diffs[1].contains("$[1].yield_lower_bound"), "{diffs:?}");
        // Missing and extra fields are named.
        let missing = fixture.replace("    \"robdd_size\": 100,\n", "");
        let diffs = diff_anchor_values(fixture, &missing).unwrap();
        assert!(diffs.iter().any(|d| d.contains("$[0].robdd_size") && d.contains("missing")));
        let diffs = diff_anchor_values(&missing, fixture).unwrap();
        assert!(diffs.iter().any(|d| d.contains("not in fixture")));
    }

    #[test]
    fn anchor_diff_surfaces_malformed_documents_readably() {
        let good = "[]";
        let err = diff_anchor_values("{ not json", good).unwrap_err();
        assert!(err.contains("fixture is malformed"), "{err}");
        let err = diff_anchor_values(good, "[1, 2").unwrap_err();
        assert!(err.contains("actual is malformed"), "{err}");
        // diff_anchors (the binary's entry point) reports instead of panicking.
        let report = diff_anchors("{ not json", good).unwrap();
        assert!(report.contains("malformed"));
    }

    #[test]
    fn bench_sweep_doc_and_baseline_comparison() {
        use socy_exec::{NamedDistribution, SweepBlock, SweepMatrix, TruncationRule};
        let mut block = SweepBlock::new();
        block.systems.push(system_spec(&socy_benchmarks::esen(4, 1)).unwrap());
        block
            .distributions
            .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, ALPHA).unwrap()));
        block.specs.push(OrderingSpec::paper_default());
        block.rules.push(TruncationRule::Epsilon(1e-2));
        block.rules.push(TruncationRule::Epsilon(1e-3));
        let mut matrix = SweepMatrix::new();
        matrix.add(block);
        let outcome = matrix.run(2);
        let doc = BenchSweepDoc::from_outcome(&outcome);
        assert_eq!(doc.schema, BENCH_SWEEP_SCHEMA);
        assert_eq!(doc.points.len(), 2);
        assert_eq!(doc.totals.points, 2);
        assert_eq!(doc.totals.chunks, 1);
        assert!(doc.totals.robdd_peak_max > 0);
        let json = serde_json::to_string_pretty(&doc).unwrap();
        // The artifact gates itself cleanly (round trip, wall clock ignored).
        assert_eq!(diff_anchors(&json, &json), None);
        // A re-run differs only in volatile fields → still gates clean.
        let rerun =
            serde_json::to_string_pretty(&BenchSweepDoc::from_outcome(&matrix.run(1))).unwrap();
        assert_eq!(diff_anchors(&json, &rerun), None, "thread count must not gate");
        // Baseline comparison prints a speedup row per matched point.
        let table = baseline_comparison(&json, &doc).unwrap();
        assert!(table.contains("matched 2/2 points"), "{table}");
        assert!(table.contains("ESEN4x1"));
        // Malformed or wrong-schema baselines fail readably.
        assert!(baseline_comparison("{", &doc).unwrap_err().contains("malformed"));
        assert!(baseline_comparison("{\"schema\": \"other/v9\"}", &doc)
            .unwrap_err()
            .contains("other/v9"));
    }

    #[test]
    fn anchor_diff_ignores_wall_clock_but_nothing_else() {
        let fixture = "[\n  {\n    \"robdd_size\": 9897,\n    \"seconds\": 0.004,\n    \"yield_lower_bound\": 0.8528030506125002\n  }\n]";
        let same_but_slower = "[\n  {\n    \"robdd_size\": 9897,\n    \"seconds\": 7.5,\n    \"yield_lower_bound\": 0.8528030506125002\n  }\n]";
        assert_eq!(diff_anchors(fixture, same_but_slower), None);
        let drifted = same_but_slower.replace("9897", "9898");
        let report = diff_anchors(fixture, &drifted).expect("size drift must be caught");
        assert!(report.contains("9897") && report.contains("9898"));
        let truncated = "[\n  {\n    \"robdd_size\": 9897\n  }\n]";
        let report = diff_anchors(fixture, truncated).expect("missing rows must be caught");
        assert!(!report.is_empty());
        // The last-ulp of the yield is part of the contract.
        let ulp = same_but_slower.replace("0.8528030506125002", "0.8528030506125001");
        assert!(diff_anchors(fixture, &ulp).is_some());
    }
}
