//! Criterion micro-benchmarks of the decision-diagram substrates: ROBDD
//! compilation of a benchmark fault tree, ROMDD conversion, and
//! probability evaluation. These isolate the three phases whose sum is the
//! Table-4 CPU time.

use criterion::{criterion_group, criterion_main, Criterion};

use soc_yield_core::GeneralizedFaultTree;
use socy_bdd::BddManager;
use socy_benchmarks::ms;
use socy_defect::truncation::truncate_at;
use socy_defect::NegativeBinomial;
use socy_mdd::MddManager;
use socy_ordering::{compute_ordering, OrderingSpec};

fn bench_phases(c: &mut Criterion) {
    let system = ms(2);
    let components = system.component_probabilities(1.0).expect("valid weights");
    let lethal = NegativeBinomial::new(1.0, 4.0).expect("valid parameters");
    let truncation = truncate_at(&lethal, 6).expect("valid truncation");
    let g = GeneralizedFaultTree::build(&system.fault_tree, 6).expect("valid fault tree");
    let ordering =
        compute_ordering(g.netlist(), g.groups(), &OrderingSpec::paper_default()).unwrap();
    let layout = g.layout(&ordering);

    let mut group = c.benchmark_group("phases_ms2");
    group.sample_size(10);
    group.bench_function("robdd_compile", |b| {
        b.iter(|| {
            let mut mgr = BddManager::new(g.netlist().num_inputs());
            mgr.build_netlist(g.netlist(), &ordering.var_level).size
        })
    });

    // Pre-build once for the conversion and probability benchmarks.
    let mut bdd = BddManager::new(g.netlist().num_inputs());
    let build = bdd.build_netlist(g.netlist(), &ordering.var_level);
    group.bench_function("romdd_convert", |b| {
        b.iter(|| {
            let mut mdd = MddManager::new(g.mdd_domains(&ordering));
            let root = mdd.from_coded_bdd(&bdd, build.root, &layout);
            mdd.node_count(root)
        })
    });

    let mut mdd = MddManager::new(g.mdd_domains(&ordering));
    let root = mdd.from_coded_bdd(&bdd, build.root, &layout);
    let probabilities = g.probability_vectors(&ordering, &truncation, &components);
    group.bench_function("probability_eval", |b| b.iter(|| mdd.probability(root, &probabilities)));
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
