//! Criterion benchmark of the variable-ordering heuristics themselves
//! (Table-2 / Table-3 axis): how long each heuristic takes on the
//! binary-logic description of `G`, and how large the resulting coded
//! ROBDD is (reported via the pipeline benchmark; here we time the
//! ordering computation in isolation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use soc_yield_core::GeneralizedFaultTree;
use socy_benchmarks::ms;
use socy_ordering::{compute_ordering, GroupOrdering, MvOrdering, OrderingSpec};

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering_heuristics");
    let system = ms(4);
    let g = GeneralizedFaultTree::build(&system.fault_tree, 6).expect("valid fault tree");
    for mv in [MvOrdering::Wv, MvOrdering::Topology, MvOrdering::Weight, MvOrdering::H4] {
        let spec = OrderingSpec::new(mv, GroupOrdering::MsbFirst).expect("ml combines with all");
        group.bench_with_input(BenchmarkId::from_parameter(spec.label()), &spec, |b, spec| {
            b.iter(|| compute_ordering(g.netlist(), g.groups(), spec).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
