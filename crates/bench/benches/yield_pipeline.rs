//! Criterion benchmark of the full yield pipeline (Table-4 configuration:
//! weight heuristic + most-significant-bit-first groups) on the smaller
//! benchmark instances, plus the two ablations:
//!
//! * coded-ROBDD route vs direct ROMDD construction,
//! * top-down vs layered conversion algorithm,
//! * ε sweep through [`Pipeline::sweep_epsilons`] (compile once, evaluate
//!   three times) vs three independent [`analyze`] calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use soc_yield_core::{analyze, analyze_direct, AnalysisOptions, ConversionAlgorithm, Pipeline};
use socy_benchmarks::{esen, ms, BenchmarkSystem};
use socy_defect::NegativeBinomial;

fn options() -> AnalysisOptions {
    AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() }
}

fn instances() -> Vec<(BenchmarkSystem, f64)> {
    vec![(ms(2), 1.0), (ms(2), 2.0), (esen(4, 1), 1.0), (esen(4, 2), 1.0)]
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("yield_pipeline");
    group.sample_size(10);
    for (system, lambda) in instances() {
        let components = system.component_probabilities(1.0).expect("valid weights");
        let lethal = NegativeBinomial::new(lambda, 4.0)
            .expect("valid parameters")
            .thinned(components.lethality())
            .expect("valid lethality");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_l{}", system.name, lambda)),
            &(system, components, lethal),
            |b, (system, components, lethal)| {
                b.iter(|| {
                    analyze(&system.fault_tree, components, lethal, &options())
                        .expect("analysis succeeds")
                        .report
                        .yield_lower_bound
                })
            },
        );
    }
    group.finish();
}

fn bench_construction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("romdd_construction");
    group.sample_size(10);
    let system = esen(4, 1);
    let components = system.component_probabilities(1.0).expect("valid weights");
    let lethal = NegativeBinomial::new(1.0, 4.0)
        .expect("valid parameters")
        .thinned(components.lethality())
        .expect("valid lethality");
    group.bench_function("coded_robdd_top_down", |b| {
        b.iter(|| {
            analyze(&system.fault_tree, &components, &lethal, &options()).unwrap().report.romdd_size
        })
    });
    group.bench_function("coded_robdd_layered", |b| {
        b.iter(|| {
            analyze(
                &system.fault_tree,
                &components,
                &lethal,
                &AnalysisOptions { conversion: ConversionAlgorithm::Layered, ..options() },
            )
            .unwrap()
            .report
            .romdd_size
        })
    });
    group.bench_function("direct_mdd", |b| {
        b.iter(|| {
            analyze_direct(&system.fault_tree, &components, &lethal, &options())
                .unwrap()
                .report
                .romdd_size
        })
    });
    group.finish();
}

fn bench_sweep_vs_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_sweep");
    group.sample_size(10);
    let system = esen(4, 1);
    let components = system.component_probabilities(1.0).expect("valid weights");
    let lethal = NegativeBinomial::new(1.0, 4.0)
        .expect("valid parameters")
        .thinned(components.lethality())
        .expect("valid lethality");
    let epsilons = [1e-2, 1e-3, 1e-4];
    group.bench_function("three_independent_analyze", |b| {
        b.iter(|| {
            epsilons
                .iter()
                .map(|&epsilon| {
                    let options = AnalysisOptions { epsilon, ..AnalysisOptions::default() };
                    analyze(&system.fault_tree, &components, &lethal, &options)
                        .expect("analysis succeeds")
                        .report
                        .yield_lower_bound
                })
                .sum::<f64>()
        })
    });
    group.bench_function("pipeline_sweep", |b| {
        b.iter(|| {
            let mut pipeline =
                Pipeline::new(&system.fault_tree, &components).expect("valid system");
            pipeline
                .sweep_epsilons(&lethal, &epsilons, &AnalysisOptions::default())
                .expect("sweep succeeds")
                .iter()
                .map(|r| r.yield_lower_bound)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_construction_ablation, bench_sweep_vs_independent);
criterion_main!(benches);
