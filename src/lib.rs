//! # soc-yield
//!
//! A Rust reproduction of *"A Combinatorial Method for the Evaluation of
//! Yield of Fault-Tolerant Systems-on-Chip"* (Munteanu, Suñé,
//! Rodríguez-Montañés, Carrasco — DSN 2003).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names, so downstream users only need a single dependency:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`defect`] | `socy-defect` | defect-count distributions, lethal-defect mapping, truncation |
//! | [`faulttree`] | `socy-faulttree` | gate-level fault-tree netlists |
//! | [`dd`] | `socy-dd` | shared hash-consed decision-diagram kernel |
//! | [`bdd`] | `socy-bdd` | ROBDD engine |
//! | [`mdd`] | `socy-mdd` | ROMDD engine + coded-ROBDD conversion |
//! | [`ordering`] | `socy-ordering` | variable-ordering heuristics |
//! | [`core`] | `soc-yield-core` | the combinatorial yield method |
//! | [`exec`] | `socy-exec` | parallel design-space sweep executor |
//! | [`sim`] | `socy-sim` | Monte-Carlo yield simulation baseline |
//! | [`benchmarks`] | `socy-benchmarks` | the MSn / ESEN benchmark generators |
//!
//! The most common entry points are also re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use soc_yield::{analyze, AnalysisOptions};
//! use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
//! use soc_yield::faulttree::Netlist;
//!
//! // Fault tree of a triple-modular-redundant system: it fails when at
//! // least two of the three replicas fail.
//! let mut f = Netlist::new();
//! let a = f.input("replica_a");
//! let b = f.input("replica_b");
//! let c = f.input("replica_c");
//! let vote = f.at_least(2, [a, b, c]);
//! f.set_output(vote);
//!
//! let components = ComponentProbabilities::new(vec![1.0 / 3.0; 3])?;
//! let lethal_defects = NegativeBinomial::new(1.0, 4.0)?;
//! let analysis = analyze(&f, &components, &lethal_defects, &AnalysisOptions::default())?;
//! println!("yield ≥ {:.4} (±{:.1e})",
//!          analysis.report.yield_lower_bound,
//!          analysis.report.error_bound);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soc_yield_core as core;
pub use socy_bdd as bdd;
pub use socy_benchmarks as benchmarks;
pub use socy_dd as dd;
pub use socy_defect as defect;
pub use socy_exec as exec;
pub use socy_faulttree as faulttree;
pub use socy_mdd as mdd;
pub use socy_ordering as ordering;
pub use socy_sim as sim;

pub use soc_yield_core::{
    analyze, analyze_direct, swap_subtree, AnalysisOptions, CompileOptions, ConversionAlgorithm,
    DdStats, Pipeline, SweepPoint, SystemDelta, YieldAnalysis, YieldReport,
};
pub use socy_dd::{GcStats, SiftConfig, SiftOutcome};
pub use socy_defect::{ComponentProbabilities, DefectDistribution, NegativeBinomial, Poisson};
pub use socy_exec::{
    NamedDistribution, SweepBlock, SweepMatrix, SweepOutcome, SweepSummary, SystemSpec,
    TruncationRule,
};
pub use socy_faulttree::Netlist;
pub use socy_ordering::{GroupOrdering, MvOrdering, OrderingSpec, StaticOrdering};
