//! Minimal offline stand-in for `serde_json`: pretty/compact printing of
//! values implementing the serde shim's `Serialize` trait.

#![forbid(unsafe_code)]

pub use serde::Value;

/// Serialisation error. The shim's data model is total, so this is never
/// actually produced; it exists so call sites can keep serde_json's
/// `Result` signature.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = value.to_json().to_pretty_string();
    // The shim keeps this simple: strip the indentation produced by the
    // pretty printer. Strings never span lines, so joining is safe.
    Ok(pretty.lines().map(str::trim_start).collect::<Vec<_>>().join("").replace("\": ", "\":"))
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        benchmark: String,
        lambda: f64,
        truncation: usize,
        monte_carlo_yield: Option<f64>,
    }

    #[test]
    fn derive_and_pretty_print_round_trip() {
        let rows = vec![
            Row {
                benchmark: "MS2".to_string(),
                lambda: 1.0,
                truncation: 6,
                monte_carlo_yield: Some(0.25),
            },
            Row {
                benchmark: "ESEN4x1".to_string(),
                lambda: 2.0,
                truncation: 10,
                monte_carlo_yield: None,
            },
        ];
        let text = super::to_string_pretty(rows.as_slice()).unwrap();
        assert!(text.contains("\"benchmark\": \"MS2\""));
        assert!(text.contains("\"lambda\": 1.0"));
        assert!(text.contains("\"truncation\": 6"));
        assert!(text.contains("\"monte_carlo_yield\": null"));
        // Field order follows declaration order.
        let b = text.find("\"benchmark\"").unwrap();
        let l = text.find("\"lambda\"").unwrap();
        assert!(b < l);
    }

    #[test]
    fn compact_form_has_no_newlines() {
        let text = super::to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(text, "[1,2,3]");
    }
}
