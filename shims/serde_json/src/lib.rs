//! Minimal offline stand-in for `serde_json`: pretty/compact printing of
//! values implementing the serde shim's `Serialize` trait, plus a small
//! recursive-descent parser ([`from_str`]) producing [`Value`] trees.

#![forbid(unsafe_code)]

pub use serde::Value;

/// Serialisation/parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("JSON parse error at byte {offset}: {}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = value.to_json().to_pretty_string();
    // The shim keeps this simple: strip the indentation produced by the
    // pretty printer. Strings never span lines, so joining is safe.
    Ok(pretty.lines().map(str::trim_start).collect::<Vec<_>>().join("").replace("\": ", "\":"))
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Supports the full JSON data model the shim's printer emits (objects,
/// arrays, strings with escapes, numbers, booleans, `null`). Numbers
/// containing `.`, `e` or `E` parse as [`Value::Float`]; other numbers
/// parse as [`Value::Int`] / [`Value::UInt`], mirroring the printer.
///
/// # Errors
///
/// Returns a readable [`Error`] naming the byte offset of the first
/// malformed construct, including trailing garbage after the document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse(pos, "trailing characters after the document"));
    }
    Ok(value)
}

/// Converts an already-parsed [`Value`] into a typed `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json(value).map_err(|e| Error(e.to_string()))
}

/// Parses a JSON document straight into a typed `T` ([`from_str`] then
/// [`from_value`]).
pub fn from_str_typed<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    from_value(&from_str(text)?)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::parse(*pos, format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::parse(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(Error::parse(*pos, format!("unexpected byte `{}`", b as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::parse(*pos, format!("expected `{keyword}`")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(Error::parse(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::parse(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::parse(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, *pos + 1)
                            .ok_or_else(|| Error::parse(*pos, "invalid \\u escape"))?;
                        match unit {
                            // A high surrogate must be immediately followed
                            // by an escaped low surrogate; together they
                            // encode one supplementary-plane scalar.
                            0xd800..=0xdbff => {
                                if bytes.get(*pos + 5) != Some(&b'\\')
                                    || bytes.get(*pos + 6) != Some(&b'u')
                                {
                                    return Err(Error::parse(
                                        *pos,
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 7)
                                    .ok_or_else(|| Error::parse(*pos + 6, "invalid \\u escape"))?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(Error::parse(
                                        *pos,
                                        "high surrogate not followed by a low surrogate",
                                    ));
                                }
                                let scalar = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                out.push(
                                    char::from_u32(scalar).expect("paired surrogates are scalar"),
                                );
                                *pos += 10;
                            }
                            0xdc00..=0xdfff => {
                                return Err(Error::parse(
                                    *pos,
                                    "unpaired low surrogate in \\u escape",
                                ));
                            }
                            _ => {
                                let c = char::from_u32(unit).ok_or_else(|| {
                                    Error::parse(*pos, "\\u escape is not a scalar")
                                })?;
                                out.push(c);
                                *pos += 4;
                            }
                        }
                    }
                    _ => return Err(Error::parse(*pos, "invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction); decoding
                // only the next few bytes keeps string parsing linear.
                if b < 0x20 {
                    return Err(Error::parse(*pos, "unescaped control character"));
                }
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let slice = bytes
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| Error::parse(*pos, "invalid UTF-8"))?;
                out.push_str(slice);
                *pos += len;
            }
        }
    }
}

/// Reads exactly four hex digits starting at `at`. `from_str_radix`
/// would accept a leading sign; JSON requires exactly four hex digits.
fn parse_hex4(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::parse(start, "invalid number"))?;
    if is_float {
        // `f64::from_str` silently saturates overflowing literals such as
        // `1e999` to infinity; a wire protocol must reject them instead.
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::Float)
            .ok_or_else(|| Error::parse(start, format!("invalid number `{text}`")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        benchmark: String,
        lambda: f64,
        truncation: usize,
        monte_carlo_yield: Option<f64>,
    }

    #[test]
    fn derive_and_pretty_print_round_trip() {
        let rows = vec![
            Row {
                benchmark: "MS2".to_string(),
                lambda: 1.0,
                truncation: 6,
                monte_carlo_yield: Some(0.25),
            },
            Row {
                benchmark: "ESEN4x1".to_string(),
                lambda: 2.0,
                truncation: 10,
                monte_carlo_yield: None,
            },
        ];
        let text = super::to_string_pretty(rows.as_slice()).unwrap();
        assert!(text.contains("\"benchmark\": \"MS2\""));
        assert!(text.contains("\"lambda\": 1.0"));
        assert!(text.contains("\"truncation\": 6"));
        assert!(text.contains("\"monte_carlo_yield\": null"));
        // Field order follows declaration order.
        let b = text.find("\"benchmark\"").unwrap();
        let l = text.find("\"lambda\"").unwrap();
        assert!(b < l);
    }

    #[test]
    fn compact_form_has_no_newlines() {
        let text = super::to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(text, "[1,2,3]");
    }

    #[test]
    fn parse_round_trips_printer_output() {
        let rows = vec![
            Row {
                benchmark: "MS2, λ'=1".to_string(),
                lambda: 1.0,
                truncation: 6,
                monte_carlo_yield: Some(0.8528030506125002),
            },
            Row {
                benchmark: "quote\"and\\slash".to_string(),
                lambda: -2.5e-3,
                truncation: 10,
                monte_carlo_yield: None,
            },
        ];
        let text = super::to_string_pretty(rows.as_slice()).unwrap();
        let parsed = super::from_str(&text).unwrap();
        let items = parsed.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("benchmark").and_then(serde::Value::as_str), Some("MS2, λ'=1"));
        assert_eq!(items[0].get("truncation").and_then(serde::Value::as_u64), Some(6));
        // Floats survive bit-exactly through print → parse.
        assert_eq!(
            items[0].get("monte_carlo_yield").and_then(serde::Value::as_f64).map(f64::to_bits),
            Some(0.8528030506125002f64.to_bits())
        );
        assert_eq!(items[1].get("lambda").and_then(serde::Value::as_f64), Some(-2.5e-3));
        assert_eq!(items[1].get("monte_carlo_yield"), Some(&serde::Value::Null));
        assert_eq!(
            items[1].get("benchmark").and_then(serde::Value::as_str),
            Some("quote\"and\\slash")
        );
    }

    #[test]
    fn parse_literals_and_structures() {
        assert_eq!(super::from_str("null").unwrap(), serde::Value::Null);
        assert_eq!(super::from_str(" true ").unwrap(), serde::Value::Bool(true));
        assert_eq!(super::from_str("false").unwrap(), serde::Value::Bool(false));
        assert_eq!(super::from_str("-42").unwrap(), serde::Value::Int(-42));
        assert_eq!(super::from_str("42").unwrap(), serde::Value::UInt(42));
        assert_eq!(super::from_str("{}").unwrap(), serde::Value::Object(vec![]));
        assert_eq!(super::from_str("[]").unwrap(), serde::Value::Array(vec![]));
        assert_eq!(
            super::from_str("[1, 2.5, \"a\\u0041\"]").unwrap(),
            serde::Value::Array(vec![
                serde::Value::UInt(1),
                serde::Value::Float(2.5),
                serde::Value::String("aA".to_string()),
            ])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "[1] garbage",
            "\"unterminated",
            "{1: 2}",
            "nan",
            "\"\\u+0AB\"",
            "\"\\u00\"",
            // Lone surrogates, in either order, are not scalar values.
            "\"\\ud83d\"",
            "\"\\ude00\"",
            "\"\\ude00\\ud83d\"",
            "\"\\ud83d x\"",
            "\"\\ud83d\\u0041\"",
            // Overflowing floats must not silently become infinity.
            "1e999",
            "-1e999",
            "1e-999e",
            // Bare control characters must be escaped on the wire.
            "\"a\u{01}b\"",
            "\"line\nbreak\"",
        ] {
            let err = super::from_str(bad).unwrap_err();
            assert!(err.to_string().contains("JSON parse error"), "{bad}: {err}");
        }
    }

    #[test]
    fn parse_accepts_surrogate_pair_escapes() {
        let parsed = super::from_str("\"\\ud83d\\ude00 + \\uD83E\\uDD16\"").unwrap();
        assert_eq!(parsed.as_str(), Some("😀 + 🤖"));
    }

    #[test]
    fn underflowing_floats_round_to_zero() {
        // Underflow is not overflow: tiny magnitudes legitimately round
        // to zero, matching every mainstream JSON parser.
        assert_eq!(super::from_str("1e-999").unwrap(), serde::Value::Float(0.0));
    }

    #[derive(serde::Deserialize, Debug, PartialEq)]
    struct TypedRow {
        benchmark: String,
        lambda: f64,
        truncation: usize,
        monte_carlo_yield: Option<f64>,
    }

    #[test]
    fn typed_deserialization_round_trips() {
        let row: TypedRow =
            super::from_str_typed("{\"benchmark\": \"MS2\", \"lambda\": 1.5, \"truncation\": 6}")
                .unwrap();
        assert_eq!(
            row,
            TypedRow {
                benchmark: "MS2".to_string(),
                lambda: 1.5,
                truncation: 6,
                monte_carlo_yield: None,
            }
        );
        let err = super::from_str_typed::<TypedRow>("{\"benchmark\": \"MS2\"}").unwrap_err();
        assert!(err.to_string().contains("missing field `lambda`"), "{err}");
        let err = super::from_str_typed::<TypedRow>(
            "{\"benchmark\": 3, \"lambda\": 1, \"truncation\": 6}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("benchmark"), "{err}");
    }
}
