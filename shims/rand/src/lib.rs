//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small, deterministic reimplementation of exactly the API
//! surface it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::gen`] for `f64`, `bool`, `u32`, `u64` and `usize`.
//!
//! The generator is SplitMix64-seeded xoshiro256++, which has excellent
//! statistical quality for Monte-Carlo use; it is *not* cryptographic,
//! and the stream differs from the real `rand::rngs::StdRng` (ChaCha12),
//! so seeds are reproducible only within this workspace.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural range; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform draw from `[low, high)` for `usize` bounds.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the real
    /// crate's ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_enough() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let u: f64 = r.gen();
        assert!((0.0..1.0).contains(&u));
    }
}
