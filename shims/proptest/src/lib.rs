//! Minimal offline stand-in for `proptest` (the build environment has no
//! crates.io access). It implements the subset this workspace's
//! property-based tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`,
//! * strategies for integer/float ranges, `any::<T>()`, tuples, and
//!   [`collection::vec`],
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and
//!   the `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking** and no persisted
//! failure seeds: each test runs a fixed, deterministic sequence of
//! random cases derived from the test's name, so failures are perfectly
//! reproducible from run to run.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value using `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F2);

    /// Types with a canonical "any value" strategy (see [`crate::arbitrary::any`]).
    pub trait ArbitraryValue: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let mag = rng.unit_f64() * 1e6;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::{Any, ArbitraryValue};

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size interval accepted by [`fn@vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; the shim keeps CI fast while
            // still exercising a meaningful sample.
            Self { cases: 64 }
        }
    }

    /// SplitMix64: tiny, deterministic, and statistically fine for test
    /// data generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `(name, case)`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Self { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ..) { .. }`
/// items (doc comments and extra attributes are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat =
                        $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in the shim,
/// so a failure panics immediately with the generated inputs' case index
/// implicit in the deterministic seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let s = (1usize..10, 0.0f64..1.0, any::<u64>());
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.new_value(&mut a).0, s.new_value(&mut b).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges honour their bounds and prop_map applies.
        #[test]
        fn ranges_and_maps(x in 2usize..=5, v in crate::collection::vec(0.25f64..0.75, 1..4)) {
            prop_assert!((2..=5).contains(&x));
            prop_assert!(!v.is_empty() && v.len() <= 3);
            for p in &v {
                prop_assert!((0.25..0.75).contains(p));
            }
            let doubled = (1usize..4).prop_map(|n| n * 2);
            let mut rng = crate::test_runner::TestRng::for_case("inner", x as u32);
            let d = doubled.new_value(&mut rng);
            prop_assert!(d == 2 || d == 4 || d == 6);
        }
    }
}
