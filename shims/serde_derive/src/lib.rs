//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim.
//!
//! Implemented directly on top of `proc_macro` (no `syn`/`quote`, which
//! are unavailable offline). Supports exactly what this workspace uses:
//! non-generic structs with named fields. Anything else produces a
//! compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting the struct's fields, in
/// declaration order, into a JSON object.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input, Direction::Serialize) {
        Ok(stream) => stream,
        Err(message) => format!("compile_error!({message:?});").parse().expect("valid error"),
    }
}

/// Derives `serde::Deserialize` by reading the struct's fields by name
/// from a JSON object. Missing fields deserialize from `null`, so
/// `Option` fields default to `None` while required fields produce a
/// readable "missing field" error.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match expand(input, Direction::Deserialize) {
        Ok(stream) => stream,
        Err(message) => format!("compile_error!({message:?});").parse().expect("valid error"),
    }
}

enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, direction: Direction) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name>`, skipping attributes and visibility.
    let mut struct_at = None;
    for (i, token) in tokens.iter().enumerate() {
        if let TokenTree::Ident(ident) = token {
            match ident.to_string().as_str() {
                "struct" => {
                    struct_at = Some(i);
                    break;
                }
                "enum" | "union" => {
                    return Err("the serde shim derive supports only structs \
                                with named fields"
                        .to_string());
                }
                _ => {}
            }
        }
    }
    let struct_at = struct_at.ok_or("expected a struct definition")?;
    let name = match tokens.get(struct_at + 1) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected a struct name".to_string()),
    };
    if matches!(tokens.get(struct_at + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("the serde shim derive does not support generic structs".to_string());
    }

    let body = tokens[struct_at + 2..]
        .iter()
        .find_map(|token| match token {
            TokenTree::Group(group) if group.delimiter() == Delimiter::Brace => {
                Some(group.stream())
            }
            _ => None,
        })
        .ok_or("the serde shim derive supports only structs with named fields")?;

    let fields = parse_named_fields(body)?;
    let output = match direction {
        Direction::Serialize => {
            let mut pushes = String::new();
            for field in &fields {
                pushes.push_str(&format!(
                    "__fields.push(({field:?}.to_string(), \
                     ::serde::Serialize::to_json(&self.{field})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Direction::Deserialize => {
            let mut reads = String::new();
            for field in &fields {
                reads.push_str(&format!(
                    "{field}: match __fields.iter().find(|(k, _)| k == {field:?}) {{\n\
                         Some((_, v)) => ::serde::Deserialize::from_json(v)\
                             .map_err(|e| e.in_field({field:?}))?,\n\
                         None => ::serde::Deserialize::from_json(&::serde::Value::Null)\
                             .map_err(|_| ::serde::DeError(\
                                 ::std::format!(\"missing field `{{}}`\", {field:?})))?,\n\
                     }},\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __fields = __value.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"an object\", __value))?;\n\
                         ::std::result::Result::Ok(Self {{ {reads} }})\n\
                     }}\n\
                 }}\n"
            )
        }
    };
    output.parse().map_err(|e| format!("shim derive produced invalid Rust: {e:?}"))
}

/// Extracts field names from the token stream of a named-field struct
/// body: `[#[attr]] [pub[(..)]] name : Type ,` repeated.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes.
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2; // `#` and the bracketed group
            if i >= tokens.len() {
                return Err("unexpected end of struct body after attribute".to_string());
            }
        }
        // Skip visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected a field name, found `{other}`")),
        };
        fields.push(name);
        // Skip `: Type` until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}
