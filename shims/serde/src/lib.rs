//! Minimal offline stand-in for `serde` (the build environment has no
//! crates.io access). It provides exactly what this workspace consumes:
//!
//! * a [`Serialize`] trait that renders a value into an owned JSON
//!   [`Value`] tree,
//! * a [`Deserialize`] trait that rebuilds a value from such a tree
//!   (used by the wire protocol of `socy-serve`), and
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros (from the
//!   sibling `serde_derive` shim) for structs with named fields.
//!
//! `serde_json::to_string_pretty` in the sibling `serde_json` shim
//! pretty-prints that tree. The data model is intentionally tiny; it is
//! not wire-compatible with real serde beyond the JSON output itself.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as pretty-printed JSON with two-space indents
    /// (matching `serde_json::to_string_pretty`).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields of an object, or `None` for non-objects.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string payload, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric payload widened to `f64`; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// A non-negative integer payload, or `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// A signed integer payload, or `None` otherwise (including unsigned
    /// payloads beyond `i64::MAX`).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The boolean payload, or `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    // JSON has no NaN/Inf; real serde_json errors here, we
                    // degrade to null to keep the harness non-fatal.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into an owned JSON value.
    fn to_json(&self) -> Value;
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Failure to rebuild a typed value from a JSON [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A readable "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let found = match found {
            Value::Null => "null".to_string(),
            Value::Bool(_) => "a boolean".to_string(),
            Value::Int(_) | Value::UInt(_) => "an integer".to_string(),
            Value::Float(_) => "a number".to_string(),
            Value::String(_) => "a string".to_string(),
            Value::Array(_) => "an array".to_string(),
            Value::Object(_) => "an object".to_string(),
        };
        DeError(format!("expected {what}, found {found}"))
    }

    /// Prefixes the error with the field it occurred under.
    #[must_use]
    pub fn in_field(self, name: &str) -> Self {
        DeError(format!("field `{name}`: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Converts a JSON value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the first mismatch between the JSON
    /// shape and the target type.
    fn from_json(value: &Value) -> Result<Self, DeError>;
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::expected("a boolean", value))
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::expected("a number", value))
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, DeError> {
                value
                    .as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::expected(
                        concat!("a non-negative integer fitting ", stringify!($t)),
                        value,
                    ))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, DeError> {
                value
                    .as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected(
                        concat!("an integer fitting ", stringify!($t)),
                        value,
                    ))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_string).ok_or_else(|| DeError::expected("a string", value))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::expected("an array", value))?;
        items.iter().map(T::from_json).collect()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_serde_json_style() {
        let doc = Value::Array(vec![Value::Object(vec![
            ("name".to_string(), Value::String("MS2, λ'=1".to_string())),
            ("yield".to_string(), Value::Float(0.25)),
            ("count".to_string(), Value::UInt(3)),
            ("mc".to_string(), Value::Null),
        ])]);
        let text = doc.to_pretty_string();
        assert!(text.contains("\"yield\": 0.25"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"mc\": null"));
        assert!(text.contains("λ'"));
        assert!(text.starts_with("[\n  {\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_pretty_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Value::Float(1.0).to_pretty_string(), "1.0");
        assert_eq!(Value::Float(0.5).to_pretty_string(), "0.5");
    }

    #[test]
    fn value_accessors() {
        let doc = Value::Object(vec![
            ("name".to_string(), Value::String("MS2".to_string())),
            ("count".to_string(), Value::UInt(3)),
            ("delta".to_string(), Value::Int(-2)),
            ("yield".to_string(), Value::Float(0.25)),
            ("rows".to_string(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
        ]);
        assert_eq!(doc.get("name").and_then(Value::as_str), Some("MS2"));
        assert_eq!(doc.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("delta").and_then(Value::as_u64), None);
        assert_eq!(doc.get("delta").and_then(Value::as_f64), Some(-2.0));
        assert_eq!(doc.get("yield").and_then(Value::as_f64), Some(0.25));
        assert_eq!(doc.get("rows").and_then(Value::as_array).map(<[Value]>::len), Some(2));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_object().map(<[(String, Value)]>::len), Some(5));
        assert_eq!(Value::Null.get("name"), None);
        assert_eq!(Value::Null.as_array(), None);
    }
}
