//! Minimal offline stand-in for `criterion` (the build environment has no
//! crates.io access). Bench functions compile and run: each benchmark is
//! executed for a small, fixed number of timed iterations and the mean
//! wall-clock time is printed. There is no statistical analysis, warm-up
//! calibration, or HTML report — this exists so `cargo bench` works and
//! the bench targets stay compiling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque benchmark identifier (a label).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Opaque hint preventing the optimiser from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` for the configured number of samples and records the
    /// mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// Top-level bench context created by [`criterion_main!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.sample_size, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("  {label}: {mean:?} mean over {samples} iterations"),
        None => println!("  {label}: closure never called Bencher::iter"),
    }
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }
}
